"""Flow rules DPL007–DPL012: whole-program privacy dataflow checks.

These rules run on top of the taint engine
(:mod:`repro.analysis.flow.taint`) and the project model
(:mod:`repro.analysis.flow.project`). Where the DPL001–DPL006 rules police
local idioms, the flow rules trace *values*: raw records reaching an
egress point, releases that bypass the privacy accountant, budgets that
drift between construction and accounting, and privatized results that are
thrown away.
"""

from __future__ import annotations

import ast
from collections.abc import Callable, Iterator

from repro.analysis.base import ModuleContext, Rule, dotted_name
from repro.analysis.findings import Finding, Severity
from repro.analysis.flow.callgraph import qualified_functions
from repro.analysis.flow.project import (
    ProjectModel,
    module_name_for,
    single_module_project,
)
from repro.analysis.flow.taint import (
    FunctionTaintAnalysis,
    TaintOptions,
    dead_sanitizer_assignments,
    iter_function_defs,
)
from repro.analysis.registry import register

#: Option keys shared by every taint-driven rule; values mirror
#: :class:`~repro.analysis.flow.taint.TaintOptions` defaults.
_TAINT_OPTION_KEYS = (
    "source_params",
    "source_call_prefixes",
    "source_methods",
    "source_attributes",
    "sanitizer_methods",
    "sanitizer_call_prefixes",
    "pure_callables",
    "metadata_attributes",
)
_TAINT_DEFAULTS = {
    key: getattr(TaintOptions(), key) for key in _TAINT_OPTION_KEYS
}


class FlowRule(Rule):
    """Base class for whole-program rules: project access + taint setup."""

    requires_project = True

    def project_for(self, ctx: ModuleContext) -> ProjectModel:
        """The whole-program model, or a one-module fallback.

        Parameters
        ----------
        ctx:
            The module under analysis.
        """
        if ctx.project is not None:
            return ctx.project
        return single_module_project(ctx.tree, ctx.path, ctx.source_lines)

    def canonicalizer(self, ctx: ModuleContext) -> Callable[[str], str]:
        """Name-canonicalization function for the module under analysis.

        Parameters
        ----------
        ctx:
            The module under analysis.
        """
        project = self.project_for(ctx)
        module_name = module_name_for(ctx.package_parts)
        if project.module(module_name) is not None:
            symbols = project.symbols
            return lambda name: symbols.canonicalize(module_name, name)
        return ctx.imports.resolve

    def taint_options(self, ctx: ModuleContext) -> TaintOptions:
        """Taint configuration assembled from this rule's options.

        Parameters
        ----------
        ctx:
            The module under analysis.
        """
        values = {
            key: tuple(self.option(ctx, key))
            for key in _TAINT_OPTION_KEYS
            if key in self.default_options
        }
        return TaintOptions(**values)


@register
class RawDataEgressRule(FlowRule):
    """DPL007: raw records must pass a DP release before leaving the program."""

    id = "DPL007"
    name = "raw-data-egress"
    description = (
        "Values derived from raw records must be declassified by a DP "
        "release before reaching print/logging/file/ledger sinks."
    )
    rationale = (
        "Every un-noised statistic that escapes to stdout, a log stream, a "
        "ledger payload, or a file is an unbounded privacy loss: the "
        "epsilon ledger says one thing while the process leaks the raw "
        "empirical risk (Mir 2012's information channel with no noise)."
    )
    default_severity = Severity.ERROR
    default_options = {
        "packages": (
            "",
            "experiments",
            "testing",
            "privacy",
            "serving",
            "private_learning",
            "local_privacy",
        ),
        # Sink kinds this rule enforces; "return" sinks are gated separately
        # because experiments legitimately return data-derived aggregates.
        "sinks": ("print", "logging", "file-write", "ledger"),
        "return_sink_packages": ("serving",),
        **_TAINT_DEFAULTS,
    }

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        """Yield findings for tainted values reaching egress sinks."""
        if not self.applies_to(ctx):
            return
        sinks = set(self.option(ctx, "sinks"))
        if ctx.package in set(self.option(ctx, "return_sink_packages")):
            sinks.add("return")
        options = self.taint_options(ctx)
        canonicalize = self.canonicalizer(ctx)
        for _, func in iter_function_defs(ctx.tree):
            analysis = FunctionTaintAnalysis(func, options, canonicalize)
            for event in analysis.iter_sink_events():
                if event.kind not in sinks:
                    continue
                yield self.finding(
                    ctx,
                    event.node,
                    f"raw data from {event.label.describe()} reaches "
                    f"{event.detail} without a DP release; privatize with "
                    "release()/release_many() before egress",
                )


@register
class UnaccountedReleaseRule(FlowRule):
    """DPL008: releases near an accountant must be charged to it."""

    id = "DPL008"
    name = "unaccounted-release"
    description = (
        "A function holding a privacy accountant that calls release() "
        "must charge the spend (here, or in a direct caller/callee)."
    )
    rationale = (
        "An accountant that is in scope but never charged is worse than no "
        "accountant: the composition bound it reports certifies spends "
        "that never reached it, so the reported epsilon understates the "
        "true loss."
    )
    default_severity = Severity.ERROR
    default_options = {
        "accountant_param_markers": ("accountant", "acct"),
        "accountant_constructors": ("PrivacyAccountant",),
        "release_methods": ("release", "release_many"),
        "charge_methods": ("charge", "run"),
    }

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        """Yield findings for uncharged releases near an accountant."""
        project = self.project_for(ctx)
        module_name = module_name_for(ctx.package_parts)
        functions = qualified_functions(project)
        graph = project.callgraph
        release_methods = set(self.option(ctx, "release_methods"))
        charge_methods = set(self.option(ctx, "charge_methods"))
        for display_name, func in iter_function_defs(ctx.tree):
            if not self._has_accountant(func, ctx):
                continue
            releases = [
                node
                for node in ast.walk(func)
                if isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in release_methods
            ]
            if not releases:
                continue
            qualname = f"{module_name}.{display_name}"
            neighborhood = graph.neighborhood(qualname)
            charged = any(
                self._charges(functions[member][1], charge_methods)
                for member in neighborhood
                if member in functions
            ) or self._charges(func, charge_methods)
            if charged:
                continue
            for release in releases:
                yield self.finding(
                    ctx,
                    release,
                    "release() with a privacy accountant in scope but no "
                    "charge()/run() in this function or its direct "
                    "callers/callees; charge the spend or use "
                    "accountant.run(mechanism, dataset)",
                )

    def _has_accountant(
        self, func: ast.FunctionDef | ast.AsyncFunctionDef, ctx: ModuleContext
    ) -> bool:
        markers = tuple(self.option(ctx, "accountant_param_markers"))
        constructors = set(self.option(ctx, "accountant_constructors"))
        args = func.args
        for arg in [*args.posonlyargs, *args.args, *args.kwonlyargs]:
            if any(marker in arg.arg for marker in markers):
                return True
        for node in ast.walk(func):
            if isinstance(node, ast.Assign) and isinstance(node.value, ast.Call):
                written = dotted_name(node.value.func)
                if written is None:
                    continue
                resolved = ctx.imports.resolve(written)
                if resolved.rsplit(".", 1)[-1] in constructors:
                    return True
        return False

    @staticmethod
    def _charges(func: ast.AST, charge_methods: set[str]) -> bool:
        for node in ast.walk(func):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in charge_methods
            ):
                return True
        return False


@register
class EpsilonDriftRule(FlowRule):
    """DPL009: the charged epsilon must match the mechanism's epsilon."""

    id = "DPL009"
    name = "epsilon-drift"
    description = (
        "Within one function, the epsilon a mechanism is constructed with "
        "must equal the epsilon charged via PrivacySpec."
    )
    rationale = (
        "When the mechanism adds noise for eps=1.0 but the ledger is "
        "charged eps=0.5, the accountant's composition bound is simply "
        "false — the classic copy-paste drift after tuning one of the two "
        "numbers."
    )
    default_severity = Severity.WARNING
    default_options = {
        "spec_constructors": ("PrivacySpec",),
    }

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        """Yield findings where constructed and charged epsilons differ."""
        spec_names = set(self.option(ctx, "spec_constructors"))
        for _, func in iter_function_defs(ctx.tree):
            constants = self._local_constants(func)
            mech_eps: dict[float, ast.Call] = {}
            spec_eps: dict[float, ast.Call] = {}
            for node in ast.walk(func):
                if not isinstance(node, ast.Call):
                    continue
                written = dotted_name(node.func)
                if written is None:
                    continue
                callee = written.rsplit(".", 1)[-1]
                value = self._epsilon_argument(node, constants)
                if value is None:
                    continue
                if callee in spec_names:
                    spec_eps.setdefault(value, node)
                elif callee[:1].isupper():
                    mech_eps.setdefault(value, node)
            if not mech_eps or not spec_eps:
                continue
            if set(mech_eps) == set(spec_eps):
                continue
            anchor = next(iter(spec_eps.values()))
            yield self.finding(
                ctx,
                anchor,
                "epsilon drift: mechanism constructed with epsilon "
                f"{sorted(mech_eps)} but PrivacySpec charges epsilon "
                f"{sorted(spec_eps)}; the accounted budget must match the "
                "noise actually added",
            )

    @staticmethod
    def _local_constants(func: ast.AST) -> dict[str, float]:
        constants: dict[str, float] = {}
        for node in ast.walk(func):
            if (
                isinstance(node, ast.Assign)
                and len(node.targets) == 1
                and isinstance(node.targets[0], ast.Name)
                and isinstance(node.value, ast.Constant)
                and isinstance(node.value.value, (int, float))
                and not isinstance(node.value.value, bool)
            ):
                constants[node.targets[0].id] = float(node.value.value)
        return constants

    @staticmethod
    def _epsilon_argument(
        node: ast.Call, constants: dict[str, float]
    ) -> float | None:
        for keyword in node.keywords:
            if keyword.arg != "epsilon":
                continue
            value = keyword.value
            if isinstance(value, ast.Constant) and isinstance(
                value.value, (int, float)
            ):
                return float(value.value)
            if isinstance(value, ast.Name):
                return constants.get(value.id)
        return None


@register
class ScalarReleaseInLoopRule(FlowRule):
    """DPL010: loop-invariant scalar releases should be release_many."""

    id = "DPL010"
    name = "scalar-release-in-loop"
    description = (
        "A .release() call inside a loop that does not depend on the loop "
        "variable should be one vectorized release_many() call."
    )
    rationale = (
        "n scalar releases re-validate and re-trace n times; release_many "
        "draws the same noise stream in one vectorized call "
        "(bit-identical by the mechanism contract) and records one span "
        "instead of n."
    )
    default_severity = Severity.WARNING
    default_options = {
        "release_methods": ("release",),
    }

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        """Yield findings for loop-invariant scalar releases."""
        release_methods = set(self.option(ctx, "release_methods"))
        for _, func in iter_function_defs(ctx.tree):
            parents = {
                child: parent
                for parent in ast.walk(func)
                for child in ast.iter_child_nodes(parent)
            }
            for node in ast.walk(func):
                if not (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr in release_methods
                ):
                    continue
                loop_names = self._innermost_loop_names(node, func, parents)
                if loop_names is None:
                    continue  # not inside any loop
                if not (loop_names & self._names(node)):
                    yield self.finding(
                        ctx,
                        node,
                        "loop-invariant scalar .release() call; one "
                        ".release_many(dataset, n) draw is stream-identical "
                        "and amortizes validation and tracing",
                    )

    @staticmethod
    def _innermost_loop_names(
        call: ast.Call, func: ast.AST, parents: dict[ast.AST, ast.AST]
    ) -> set[str] | None:
        """Binding names of the nearest enclosing for-loop/comprehension.

        Returns ``None`` when the call sits outside any loop (while loops
        are deliberately not counted — their trip count is rarely a batch
        size). Judging invariance against the *innermost* loop only keeps
        a per-item release inside a comprehension from being blamed on an
        unrelated outer loop.

        Parameters
        ----------
        call:
            The release call being classified.
        func:
            The enclosing function definition (walk boundary).
        parents:
            Child → parent map for the function body.
        """
        comp_types = (ast.ListComp, ast.SetComp, ast.GeneratorExp, ast.DictComp)
        node: ast.AST = call
        while node is not func:
            parent = parents.get(node)
            if parent is None:
                return None
            if isinstance(parent, (ast.For, ast.AsyncFor)) and node is not parent.iter:
                return ScalarReleaseInLoopRule._names(parent.target)
            if isinstance(parent, ast.comprehension):
                via_first_iter = node is parent.iter
                comp_clause = parent
                expr = parents.get(parent)
                if expr is None or not isinstance(expr, comp_types):
                    return None
                if (
                    via_first_iter
                    and expr.generators
                    and expr.generators[0] is comp_clause
                ):
                    # The first generator's iterable is evaluated once,
                    # before iteration starts — keep looking further out.
                    node = expr
                    continue
                names: set[str] = set()
                for generator in expr.generators:
                    names |= ScalarReleaseInLoopRule._names(generator.target)
                return names
            if isinstance(parent, comp_types):
                names = set()
                for generator in parent.generators:
                    names |= ScalarReleaseInLoopRule._names(generator.target)
                return names
            node = parent
        return None

    @staticmethod
    def _names(node: ast.AST) -> set[str]:
        return {
            child.id for child in ast.walk(node) if isinstance(child, ast.Name)
        }


@register
class TaintThroughExceptionRule(FlowRule):
    """DPL011: raw records must not be embedded in exception messages."""

    id = "DPL011"
    name = "taint-through-exception"
    description = (
        "Values derived from raw records must not flow into raised "
        "exception messages."
    )
    rationale = (
        "Exception text is the egress channel nobody audits: it lands in "
        "pytest output, CI logs, and crash reports. A validation error "
        "that interpolates the offending record republishes the data the "
        "mechanism was supposed to protect."
    )
    default_severity = Severity.WARNING
    default_options = dict(_TAINT_DEFAULTS)

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        """Yield findings for tainted values reaching raise statements."""
        options = self.taint_options(ctx)
        canonicalize = self.canonicalizer(ctx)
        for _, func in iter_function_defs(ctx.tree):
            analysis = FunctionTaintAnalysis(func, options, canonicalize)
            for event in analysis.iter_sink_events():
                if event.kind != "raise":
                    continue
                yield self.finding(
                    ctx,
                    event.node,
                    f"raw data from {event.label.describe()} flows into a "
                    "raised exception message; describe the violation "
                    "without embedding records",
                )


@register
class DeadSanitizerRule(FlowRule):
    """DPL012: a DP release whose result is discarded wastes budget."""

    id = "DPL012"
    name = "dead-sanitizer"
    description = (
        "The result of a release()/release_many() call must be used; a "
        "discarded release still spends privacy budget."
    )
    rationale = (
        "A release whose output is never read is pure privacy loss: the "
        "noise was drawn, the budget (if accounted) was charged, and "
        "nothing was learned. Almost always a refactoring leftover."
    )
    default_severity = Severity.WARNING
    default_options = dict(_TAINT_DEFAULTS)

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        """Yield findings for discarded release results."""
        options = self.taint_options(ctx)
        canonicalize = self.canonicalizer(ctx)
        for _, func in iter_function_defs(ctx.tree):
            analysis = FunctionTaintAnalysis(func, options, canonicalize)
            for call in dead_sanitizer_assignments(func, analysis):
                yield self.finding(
                    ctx,
                    call,
                    "DP release result is never used; the privacy budget "
                    "is spent with no utility — use the value or delete "
                    "the call",
                )
