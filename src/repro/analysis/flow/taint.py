"""Intraprocedural taint engine for sensitive-data flow.

The engine answers one question per function: *which expressions are
derived from raw records?* Taint enters at **sources** (dataset-like
parameters, ``SyntheticTask.sample``-style generators, dataset
constructors), propagates through assignments, arithmetic, subscripts,
comprehensions and f-strings, and is **declassified** at sanitizers —
differentially-private release calls — because their output is, by
construction, safe to publish. Rules in
:mod:`repro.analysis.flow.rules` then decide which **sinks** (logging,
returns, raises, ledger payloads, file writes) a tainted value must not
reach.

The analysis is deliberately conservative in both directions: a call with
a tainted argument taints its result (unless allowlisted as pure), while
anything the engine cannot resolve stays untainted — so findings point at
flows the engine positively traced, never at gaps in its model.
"""

from __future__ import annotations

import ast
from collections.abc import Callable, Iterator
from dataclasses import dataclass, field

__all__ = [
    "TaintLabel",
    "TaintOptions",
    "SinkEvent",
    "FunctionTaintAnalysis",
    "iter_function_defs",
    "dead_sanitizer_assignments",
]


@dataclass(frozen=True)
class TaintLabel:
    """Provenance of a tainted value.

    Parameters
    ----------
    kind:
        ``"param"`` (sensitive parameter), ``"call"`` (dataset
        constructor/loader), or ``"method"`` (generator method such as
        ``task.sample``).
    source:
        Human-readable origin: the parameter name or the call as written.
    line:
        1-based line where taint entered the function.
    """

    kind: str
    source: str
    line: int

    def describe(self) -> str:
        """Short origin description used in finding messages."""
        if self.kind == "param":
            return f"parameter {self.source!r}"
        return f"call to {self.source!r}"


@dataclass(frozen=True)
class TaintOptions:
    """Knobs controlling what counts as a source, sanitizer, or pure call.

    Parameters
    ----------
    source_params:
        Parameter names seeded as raw data on entry.
    source_call_prefixes:
        Canonical dotted-name prefixes whose call results are raw data
        (dataset loaders, neighbour-pair generators).
    source_methods:
        Method names whose call results are raw data regardless of the
        receiver (``task.sample(...)``).
    source_attributes:
        ``self.<attr>`` names holding raw data.
    sanitizer_methods:
        Method names that declassify (DP release calls).
    sanitizer_call_prefixes:
        Canonical dotted-name prefixes that declassify.
    pure_callables:
        Canonical callables whose results are treated as benign metadata
        even with tainted arguments.
    metadata_attributes:
        Attribute names whose access on tainted values yields benign
        metadata (array shape/dtype), not data.
    """

    source_params: tuple[str, ...] = (
        "dataset",
        "datasets",
        "data",
        "records",
        "record",
        "sample",
        "samples",
        "stream",
        "dataset_a",
        "dataset_b",
        "raw",
    )
    source_call_prefixes: tuple[str, ...] = (
        "repro.learning.datasets.",
        "repro.testing.neighbors.",
    )
    source_methods: tuple[str, ...] = ("sample",)
    source_attributes: tuple[str, ...] = ()
    sanitizer_methods: tuple[str, ...] = ("release", "release_many")
    sanitizer_call_prefixes: tuple[str, ...] = ()
    pure_callables: tuple[str, ...] = (
        "len",
        "type",
        "isinstance",
        "id",
        "hash",
        "numpy.shape",
        "numpy.ndim",
        "numpy.size",
        "numpy.result_type",
    )
    metadata_attributes: tuple[str, ...] = ("shape", "ndim", "size", "dtype")


@dataclass(frozen=True)
class SinkEvent:
    """One tainted value reaching a potential egress point.

    Parameters
    ----------
    node:
        The sink statement/expression node (for the finding location).
    kind:
        ``"print"``, ``"logging"``, ``"file-write"``, ``"ledger"``,
        ``"return"``, or ``"raise"``.
    label:
        Provenance of the tainted value that reached the sink.
    detail:
        Short description of the sink (function or method called).
    """

    node: ast.AST
    kind: str
    label: TaintLabel
    detail: str


#: Methods that make an attribute call look like a logger at ``kind="logging"``.
_LOG_METHODS = frozenset(
    {"debug", "info", "warning", "warn", "error", "critical", "exception", "log"}
)
_LOGGER_NAMES = frozenset({"logger", "log", "logging"})
_WRITE_METHODS = frozenset({"write", "writelines", "write_text"})


class FunctionTaintAnalysis:
    """Taint state for one function body.

    Runs a small fixpoint over the function's statements (taint only grows
    except at sanitizer assignments, so three passes always converge for
    the loop-free dataflow facts the rules need), then exposes
    :meth:`expr_label` for arbitrary expression queries and
    :meth:`iter_sink_events` for the rule layer.

    Parameters
    ----------
    func:
        The function to analyze.
    options:
        Source/sanitizer/pure-call configuration.
    canonicalize:
        Maps a dotted name as written to its canonical form (import-alias
        and project-symbol aware).
    """

    _MAX_PASSES = 3

    def __init__(
        self,
        func: ast.FunctionDef | ast.AsyncFunctionDef,
        options: TaintOptions,
        canonicalize: Callable[[str], str],
    ) -> None:
        self.func = func
        self.options = options
        self.canonicalize = canonicalize
        self.env: dict[str, TaintLabel] = {}
        self._seed_params()
        self._run_fixpoint()

    # -- seeding and propagation -----------------------------------------

    def _seed_params(self) -> None:
        args = self.func.args
        all_args = [
            *args.posonlyargs,
            *args.args,
            *args.kwonlyargs,
            *filter(None, [args.vararg, args.kwarg]),
        ]
        wanted = set(self.options.source_params)
        for arg in all_args:
            if arg.arg in wanted:
                self.env[arg.arg] = TaintLabel(
                    kind="param", source=arg.arg, line=arg.lineno
                )

    def _run_fixpoint(self) -> None:
        for _ in range(self._MAX_PASSES):
            before = dict(self.env)
            for node in ast.walk(self.func):
                self._transfer(node)
            if self.env == before:
                break

    def _transfer(self, node: ast.AST) -> None:
        if isinstance(node, ast.Assign):
            label = self.expr_label(node.value)
            for target in node.targets:
                self._bind_target(target, label)
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            self._bind_target(node.target, self.expr_label(node.value))
        elif isinstance(node, ast.AugAssign):
            label = self.expr_label(node.value)
            if label is not None and isinstance(node.target, ast.Name):
                self.env.setdefault(node.target.id, label)
        elif isinstance(node, ast.NamedExpr):
            label = self.expr_label(node.value)
            if label is not None and isinstance(node.target, ast.Name):
                self.env.setdefault(node.target.id, label)
        elif isinstance(node, (ast.For, ast.AsyncFor)):
            label = self.expr_label(node.iter)
            if label is not None:
                self._bind_target(node.target, label)
        elif isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                if item.optional_vars is None:
                    continue
                label = self.expr_label(item.context_expr)
                if label is not None:
                    self._bind_target(item.optional_vars, label)

    def _bind_target(self, target: ast.AST, label: TaintLabel | None) -> None:
        if isinstance(target, ast.Name):
            if label is None:
                # Reassignment from a clean value (e.g. a sanitizer call)
                # declassifies the name from here on. The fixpoint is
                # union-only otherwise, so this is the one kill rule.
                self.env.pop(target.id, None)
            else:
                self.env[target.id] = label
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._bind_target(element, label)
        elif isinstance(target, ast.Starred):
            self._bind_target(target.value, label)

    # -- expression queries ----------------------------------------------

    def expr_label(self, node: ast.AST | None) -> TaintLabel | None:
        """Provenance label if ``node`` evaluates to a tainted value.

        Parameters
        ----------
        node:
            Any expression node (``None`` returns ``None``).
        """
        if node is None:
            return None
        if isinstance(node, ast.Name):
            return self.env.get(node.id)
        if isinstance(node, ast.Attribute):
            if (
                isinstance(node.value, ast.Name)
                and node.value.id == "self"
                and node.attr in self.options.source_attributes
            ):
                return TaintLabel(
                    kind="param", source=f"self.{node.attr}", line=node.lineno
                )
            if node.attr in self.options.metadata_attributes:
                return None
            return self.expr_label(node.value)
        if isinstance(node, ast.Call):
            return self._call_label(node)
        if isinstance(node, ast.Subscript):
            return self.expr_label(node.value)
        if isinstance(node, ast.BinOp):
            return self.expr_label(node.left) or self.expr_label(node.right)
        if isinstance(node, ast.UnaryOp):
            return self.expr_label(node.operand)
        if isinstance(node, ast.BoolOp):
            return self._first_label(node.values)
        if isinstance(node, ast.Compare):
            return self.expr_label(node.left) or self._first_label(node.comparators)
        if isinstance(node, (ast.List, ast.Tuple, ast.Set)):
            return self._first_label(node.elts)
        if isinstance(node, ast.Dict):
            return self._first_label(
                [*filter(None, node.keys), *node.values]
            )
        if isinstance(node, ast.JoinedStr):
            return self._first_label(
                [part.value for part in node.values if isinstance(part, ast.FormattedValue)]
            )
        if isinstance(node, ast.FormattedValue):
            return self.expr_label(node.value)
        if isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp)):
            return self._comprehension_label(node.elt, node.generators)
        if isinstance(node, ast.DictComp):
            return self._comprehension_label(node.value, node.generators)
        if isinstance(node, ast.IfExp):
            return self.expr_label(node.body) or self.expr_label(node.orelse)
        if isinstance(node, ast.Starred):
            return self.expr_label(node.value)
        if isinstance(node, ast.Await):
            return self.expr_label(node.value)
        return None

    def _first_label(self, nodes: list[ast.expr]) -> TaintLabel | None:
        for item in nodes:
            label = self.expr_label(item)
            if label is not None:
                return label
        return None

    def _comprehension_label(
        self, elt: ast.expr, generators: list[ast.comprehension]
    ) -> TaintLabel | None:
        for generator in generators:
            label = self.expr_label(generator.iter)
            if label is not None:
                return label
        return self.expr_label(elt)

    def _call_label(self, node: ast.Call) -> TaintLabel | None:
        if self.is_sanitizer_call(node):
            return None
        written = self._written_name(node.func)
        if written is not None:
            canonical = self.canonicalize(written)
            if canonical in self.options.pure_callables:
                return None
            for prefix in self.options.source_call_prefixes:
                if canonical.startswith(prefix):
                    return TaintLabel(kind="call", source=written, line=node.lineno)
        if (
            isinstance(node.func, ast.Attribute)
            and node.func.attr in self.options.source_methods
        ):
            receiver = self._written_name(node.func.value) or "<expr>"
            return TaintLabel(
                kind="method",
                source=f"{receiver}.{node.func.attr}",
                line=node.lineno,
            )
        # Conservative propagation: a call consuming raw data produces
        # data-derived output unless it is a recognized sanitizer.
        for argument in node.args:
            label = self.expr_label(argument)
            if label is not None:
                return label
        for keyword in node.keywords:
            label = self.expr_label(keyword.value)
            if label is not None:
                return label
        return self.expr_label(node.func) if isinstance(node.func, ast.Attribute) else None

    def is_sanitizer_call(self, node: ast.Call) -> bool:
        """Whether ``node`` is a declassifying (DP release) call."""
        if (
            isinstance(node.func, ast.Attribute)
            and node.func.attr in self.options.sanitizer_methods
        ):
            return True
        written = self._written_name(node.func)
        if written is None:
            return False
        canonical = self.canonicalize(written)
        return any(
            canonical.startswith(prefix)
            for prefix in self.options.sanitizer_call_prefixes
        )

    @staticmethod
    def _written_name(node: ast.AST) -> str | None:
        parts: list[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        parts.append(node.id)
        return ".".join(reversed(parts))

    # -- sink scanning ----------------------------------------------------

    def iter_sink_events(self) -> Iterator[SinkEvent]:
        """Yield every tainted value reaching a sink in this function."""
        for node in ast.walk(self.func):
            if isinstance(node, ast.Call):
                yield from self._call_sinks(node)
            elif isinstance(node, ast.Return):
                label = self.expr_label(node.value)
                if label is not None:
                    yield SinkEvent(
                        node=node, kind="return", label=label, detail="return"
                    )
            elif isinstance(node, ast.Raise) and node.exc is not None:
                label = self.expr_label(node.exc)
                if label is not None:
                    yield SinkEvent(
                        node=node, kind="raise", label=label, detail="raise"
                    )

    def _call_sinks(self, node: ast.Call) -> Iterator[SinkEvent]:
        tainted_arg = self._first_label(
            [*node.args, *[keyword.value for keyword in node.keywords]]
        )
        if tainted_arg is None:
            return
        if isinstance(node.func, ast.Name):
            canonical = self.canonicalize(node.func.id)
            if canonical == "print":
                yield SinkEvent(
                    node=node, kind="print", label=tainted_arg, detail="print()"
                )
            return
        if not isinstance(node.func, ast.Attribute):
            return
        attr = node.func.attr
        receiver = self._written_name(node.func.value)
        canonical_receiver = (
            self.canonicalize(receiver) if receiver is not None else None
        )
        if attr in _LOG_METHODS and canonical_receiver is not None:
            head = canonical_receiver.split(".")[0].lower()
            if head in _LOGGER_NAMES or canonical_receiver.startswith("logging"):
                yield SinkEvent(
                    node=node,
                    kind="logging",
                    label=tainted_arg,
                    detail=f"{receiver}.{attr}()",
                )
                return
        if attr in _WRITE_METHODS:
            yield SinkEvent(
                node=node,
                kind="file-write",
                label=tainted_arg,
                detail=f"{receiver or '<expr>'}.{attr}()",
            )
            return
        full = self._written_name(node.func)
        if full is not None and self.canonicalize(full) in ("json.dump",):
            yield SinkEvent(
                node=node, kind="file-write", label=tainted_arg, detail=f"{full}()"
            )
            return
        if attr == "record":
            yield SinkEvent(
                node=node,
                kind="ledger",
                label=tainted_arg,
                detail=f"{receiver or '<expr>'}.record()",
            )


def iter_function_defs(
    tree: ast.Module,
) -> Iterator[tuple[str, ast.FunctionDef | ast.AsyncFunctionDef]]:
    """Yield ``(display_name, node)`` for every function in a module.

    Methods are reported as ``"Class.method"``; nested functions are
    analyzed as part of their enclosing function, not separately.
    """
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node.name, node
        elif isinstance(node, ast.ClassDef):
            for item in node.body:
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    yield f"{node.name}.{item.name}", item


@dataclass(frozen=True)
class _SanitizerUse:
    """Internal record of a sanitizer call whose result may be discarded."""

    node: ast.Call
    bound_name: str | None = field(default=None)


def dead_sanitizer_assignments(
    func: ast.FunctionDef | ast.AsyncFunctionDef,
    analysis: FunctionTaintAnalysis,
) -> Iterator[ast.Call]:
    """Yield sanitizer calls whose privatized result is never used.

    Two shapes are reported: a bare expression statement discarding the
    release (``mech.release(data)``) and an assignment to a name that is
    never read afterwards. Either way the privacy budget was spent for
    nothing — usually a refactoring leftover.

    Parameters
    ----------
    func:
        The function to scan.
    analysis:
        The taint analysis for ``func`` (supplies sanitizer detection).
    """
    uses: list[_SanitizerUse] = []
    for node in ast.walk(func):
        if isinstance(node, ast.Expr) and isinstance(node.value, ast.Call):
            if analysis.is_sanitizer_call(node.value):
                uses.append(_SanitizerUse(node=node.value))
        elif isinstance(node, ast.Assign) and isinstance(node.value, ast.Call):
            if (
                analysis.is_sanitizer_call(node.value)
                and len(node.targets) == 1
                and isinstance(node.targets[0], ast.Name)
            ):
                uses.append(
                    _SanitizerUse(node=node.value, bound_name=node.targets[0].id)
                )
    if not uses:
        return
    reads: set[str] = set()
    assigned_names = {use.bound_name for use in uses if use.bound_name}
    for node in ast.walk(func):
        if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load):
            if node.id in assigned_names:
                reads.add(node.id)
    for use in uses:
        if use.bound_name is None or use.bound_name not in reads:
            yield use.node
