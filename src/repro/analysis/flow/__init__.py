"""``dpflow`` — whole-program privacy dataflow analysis for ``dplint``.

This subpackage upgrades the per-module linter into a flow-sensitive
analyzer: :mod:`~repro.analysis.flow.project` parses the full tree once,
:mod:`~repro.analysis.flow.symbols` and
:mod:`~repro.analysis.flow.callgraph` resolve names and call edges across
modules, :mod:`~repro.analysis.flow.taint` traces raw records from sources
to sinks, and :mod:`~repro.analysis.flow.rules` turns those traces into
the DPL007–DPL012 findings.
"""

from repro.analysis.flow.callgraph import CallGraph, CallSite, qualified_functions
from repro.analysis.flow.project import (
    ModuleInfo,
    ProjectModel,
    module_name_for,
    single_module_project,
)
from repro.analysis.flow.symbols import ModuleSymbols, ProjectSymbols, Symbol
from repro.analysis.flow.taint import (
    FunctionTaintAnalysis,
    SinkEvent,
    TaintLabel,
    TaintOptions,
    dead_sanitizer_assignments,
    iter_function_defs,
)

__all__ = [
    "CallGraph",
    "CallSite",
    "FunctionTaintAnalysis",
    "ModuleInfo",
    "ModuleSymbols",
    "ProjectModel",
    "ProjectSymbols",
    "SinkEvent",
    "Symbol",
    "TaintLabel",
    "TaintOptions",
    "dead_sanitizer_assignments",
    "iter_function_defs",
    "module_name_for",
    "qualified_functions",
    "single_module_project",
]
