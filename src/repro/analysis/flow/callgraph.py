"""Intra-package call graph over the parsed project.

Nodes are fully-qualified function names (``repro.core.bayes.fit`` or
``repro.privacy.audit.Auditor.run``); edges are syntactic call sites
resolved through :class:`~repro.analysis.flow.symbols.ProjectSymbols`.
``self.method(...)`` calls resolve within the enclosing class. The graph
is deliberately conservative: unresolvable calls simply produce no edge,
so rules that consult callers/callees treat absence as "unknown", never
as proof of a violation.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.analysis.base import dotted_name

if TYPE_CHECKING:  # pragma: no cover - types only
    from repro.analysis.flow.project import ProjectModel

__all__ = ["CallSite", "CallGraph", "qualified_functions"]


@dataclass(frozen=True)
class CallSite:
    """One resolved call edge.

    Parameters
    ----------
    caller:
        Qualified name of the function containing the call.
    callee:
        Qualified name of the function being called.
    line:
        1-based line of the call expression.
    """

    caller: str
    callee: str
    line: int


def qualified_functions(
    project: "ProjectModel",
) -> dict[str, tuple[str, ast.FunctionDef | ast.AsyncFunctionDef]]:
    """Every function in the project keyed by qualified name.

    The value pairs the defining module's dotted name with the function
    node, so callers can recover the module context of any graph node.

    Parameters
    ----------
    project:
        The parsed project to index.
    """
    table: dict[str, tuple[str, ast.FunctionDef | ast.AsyncFunctionDef]] = {}
    for info in project.modules:
        if info.tree is None:
            continue
        for node in info.tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                table[f"{info.name}.{node.name}"] = (info.name, node)
            elif isinstance(node, ast.ClassDef):
                for item in node.body:
                    if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        table[f"{info.name}.{node.name}.{item.name}"] = (
                            info.name,
                            item,
                        )
    return table


@dataclass
class CallGraph:
    """Caller/callee adjacency over qualified function names."""

    edges: tuple[CallSite, ...] = ()
    _callees: dict[str, set[str]] = field(default_factory=dict, repr=False)
    _callers: dict[str, set[str]] = field(default_factory=dict, repr=False)

    @classmethod
    def build(cls, project: "ProjectModel") -> "CallGraph":
        """Resolve every call site in the project into a graph.

        Parameters
        ----------
        project:
            The parsed project to walk.
        """
        symbols = project.symbols
        functions = qualified_functions(project)
        sites: list[CallSite] = []
        for qualname, (module_name, func) in functions.items():
            class_prefix = qualname[len(module_name) + 1 :].rpartition(".")[0]
            for node in ast.walk(func):
                if not isinstance(node, ast.Call):
                    continue
                callee = cls._resolve_call(
                    node, module_name, class_prefix, symbols, functions
                )
                if callee is not None:
                    sites.append(
                        CallSite(caller=qualname, callee=callee, line=node.lineno)
                    )
        graph = cls(edges=tuple(sites))
        for site in sites:
            graph._callees.setdefault(site.caller, set()).add(site.callee)
            graph._callers.setdefault(site.callee, set()).add(site.caller)
        return graph

    @staticmethod
    def _resolve_call(
        node: ast.Call,
        module_name: str,
        class_prefix: str,
        symbols: "object",
        functions: dict[str, tuple[str, ast.FunctionDef | ast.AsyncFunctionDef]],
    ) -> str | None:
        # self.method(...) → method of the enclosing class.
        if (
            isinstance(node.func, ast.Attribute)
            and isinstance(node.func.value, ast.Name)
            and node.func.value.id == "self"
            and class_prefix
        ):
            candidate = f"{module_name}.{class_prefix}.{node.func.attr}"
            return candidate if candidate in functions else None
        written = dotted_name(node.func)
        if written is None:
            return None
        symbol = symbols.resolve(module_name, written)  # type: ignore[attr-defined]
        if symbol is None:
            return None
        qualname = str(symbol.qualname)
        # Calling a class means running its __init__ — keep the class node
        # itself as the callee so "did my callers charge?" checks see it.
        return qualname if qualname in functions or symbol.kind == "class" else None

    def callees(self, qualname: str) -> frozenset[str]:
        """Functions directly called by ``qualname``."""
        return frozenset(self._callees.get(qualname, ()))

    def callers(self, qualname: str) -> frozenset[str]:
        """Functions that directly call ``qualname``."""
        return frozenset(self._callers.get(qualname, ()))

    def neighborhood(self, qualname: str) -> frozenset[str]:
        """The function itself plus its direct callers and callees."""
        return frozenset({qualname}) | self.callers(qualname) | self.callees(qualname)
