"""Project-wide symbol tables and import-aware name resolution.

:class:`ProjectSymbols` answers "what does the dotted name ``X.y`` written
in module ``M`` actually refer to?" by combining each module's import
aliases with the definition tables of every analyzed module. Resolution is
best-effort and purely syntactic — precise enough for the flow rules, which
only need to recognize calls into known constructors and sanitizers.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - types only
    from repro.analysis.flow.project import ModuleInfo, ProjectModel

__all__ = ["Symbol", "ModuleSymbols", "ProjectSymbols"]


@dataclass(frozen=True)
class Symbol:
    """One top-level definition in an analyzed module.

    Parameters
    ----------
    qualname:
        Fully-qualified dotted name, e.g. ``"repro.privacy.audit.Auditor"``.
    module:
        Dotted name of the defining module.
    name:
        Local name inside the module (class/function/variable name, or
        ``"Class.method"`` for methods).
    kind:
        ``"class"``, ``"function"``, ``"method"``, or ``"assignment"``.
    node:
        The defining AST node.
    """

    qualname: str
    module: str
    name: str
    kind: str
    node: ast.AST


class ModuleSymbols:
    """Top-level definitions of a single module, keyed by local name."""

    def __init__(self, info: "ModuleInfo") -> None:
        self.module_name = info.name
        self.by_name: dict[str, Symbol] = {}
        if info.tree is None:
            return
        for node in info.tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._add(node.name, "function", node)
            elif isinstance(node, ast.ClassDef):
                self._add(node.name, "class", node)
                for item in node.body:
                    if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        self._add(f"{node.name}.{item.name}", "method", item)
            elif isinstance(node, ast.Assign):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        self._add(target.id, "assignment", node)
            elif isinstance(node, ast.AnnAssign):
                if isinstance(node.target, ast.Name):
                    self._add(node.target.id, "assignment", node)

    def _add(self, name: str, kind: str, node: ast.AST) -> None:
        self.by_name[name] = Symbol(
            qualname=f"{self.module_name}.{name}",
            module=self.module_name,
            name=name,
            kind=kind,
            node=node,
        )


class ProjectSymbols:
    """Import-aware resolver over every module's symbol table.

    Parameters
    ----------
    project:
        The parsed project to index.
    """

    def __init__(self, project: "ProjectModel") -> None:
        self._project = project
        self._tables: dict[str, ModuleSymbols] = {
            info.name: ModuleSymbols(info) for info in project.modules
        }
        self.by_qualname: dict[str, Symbol] = {}
        for table in self._tables.values():
            for symbol in table.by_name.values():
                self.by_qualname.setdefault(symbol.qualname, symbol)

    def module_table(self, module_name: str) -> ModuleSymbols | None:
        """The symbol table of the module registered under ``module_name``."""
        return self._tables.get(module_name)

    def canonicalize(self, module_name: str, name: str) -> str:
        """Canonical dotted name for ``name`` as written inside a module.

        Substitutes the first segment through the module's import aliases
        (``np.array`` → ``numpy.array``); names defined in the module
        itself are qualified with the module's dotted name.

        Parameters
        ----------
        module_name:
            Dotted name of the module the reference appears in.
        name:
            The dotted name exactly as written in source.
        """
        info = self._project.module(module_name)
        if info is None:
            return name
        head, _, rest = name.partition(".")
        table = self._tables.get(module_name)
        if table is not None and head in table.by_name and head not in info.imports.aliases:
            local = table.by_name[head].qualname
            return f"{local}.{rest}" if rest else local
        return info.imports.resolve(name)

    def resolve(self, module_name: str, name: str) -> Symbol | None:
        """The :class:`Symbol` a written name refers to, if it is in-project.

        Parameters
        ----------
        module_name:
            Dotted name of the module the reference appears in.
        name:
            The dotted name exactly as written in source.
        """
        canonical = self.canonicalize(module_name, name)
        symbol = self.by_qualname.get(canonical)
        if symbol is not None:
            return symbol
        # ``from repro.core import bayes`` + ``bayes.fit`` canonicalizes to
        # ``repro.core.bayes.fit``: the head resolves to a *module*, and the
        # tail is a symbol inside it.
        module_part, _, member = canonical.rpartition(".")
        if member and self._project.module(module_part) is not None:
            table = self._tables.get(module_part)
            if table is not None:
                return table.by_name.get(member)
        return None
