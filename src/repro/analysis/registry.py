"""Rule registry: the catalog ``dplint`` runs and documents itself from.

Rules self-register via the :func:`register` decorator at import time;
:func:`all_rules` imports the rule modules on first use so the registry is
complete without callers importing anything but this module.
"""

from __future__ import annotations

import importlib

from repro.analysis.base import Rule
from repro.exceptions import ValidationError

_REGISTRY: dict[str, type[Rule]] = {}

#: Modules that define rules; imported lazily by :func:`all_rules`.
_RULE_MODULES = (
    "repro.analysis.rules.rng",
    "repro.analysis.rules.validation",
    "repro.analysis.rules.sampling",
    "repro.analysis.rules.exceptions",
    "repro.analysis.rules.exports",
    "repro.analysis.rules.docstrings",
    "repro.analysis.flow.rules",
)


def register(rule_class: type[Rule]) -> type[Rule]:
    """Class decorator adding a rule to the global registry.

    Parameters
    ----------
    rule_class:
        Concrete :class:`~repro.analysis.base.Rule` subclass with unique
        ``id`` and ``name`` attributes.
    """
    if not rule_class.id or not rule_class.name:
        raise ValidationError(
            f"rule {rule_class.__name__} must define id and name"
        )
    for existing in _REGISTRY.values():
        if existing.id == rule_class.id or existing.name == rule_class.name:
            if existing is not rule_class:
                raise ValidationError(
                    f"duplicate rule id/name: {rule_class.id} "
                    f"({rule_class.name})"
                )
    _REGISTRY[rule_class.id] = rule_class
    return rule_class


def _load_builtin_rules() -> None:
    for module in _RULE_MODULES:
        importlib.import_module(module)


def all_rules() -> list[type[Rule]]:
    """Every registered rule class, ordered by rule id."""
    _load_builtin_rules()
    return [_REGISTRY[rule_id] for rule_id in sorted(_REGISTRY)]


def get_rule(key: str) -> type[Rule]:
    """Look up a rule by id (``DPL001``) or name (``rng-discipline``).

    Parameters
    ----------
    key:
        Rule id or kebab-case rule name.
    """
    _load_builtin_rules()
    for rule_class in _REGISTRY.values():
        if key in (rule_class.id, rule_class.name):
            return rule_class
    raise ValidationError(f"unknown rule {key!r}")


def known_rule_keys() -> frozenset[str]:
    """All valid ids and names (accepted in pragmas and ``--select``)."""
    _load_builtin_rules()
    keys = set()
    for rule_class in _REGISTRY.values():
        keys.add(rule_class.id)
        keys.add(rule_class.name)
    return frozenset(keys)
