"""Text, JSON, and SARIF renderers for ``dplint`` reports."""

from __future__ import annotations

import json

from repro.analysis.engine import AnalysisReport
from repro.analysis.registry import all_rules
from repro.analysis.sarif import format_sarif
from repro.exceptions import ValidationError

#: Output formats accepted by the CLI.
FORMATS = ("text", "json", "sarif")


def format_text(report: AnalysisReport) -> str:
    """Human-readable one-line-per-finding rendering with a summary.

    Parameters
    ----------
    report:
        The analyzer outcome to render.
    """
    lines = [str(finding) for finding in report.findings]
    counts = report.count_by_severity()
    summary = ", ".join(
        f"{counts[name]} {name}" for name in ("error", "warning", "info") if name in counts
    )
    hidden = []
    if report.suppressed_count:
        hidden.append(f"{report.suppressed_count} suppressed")
    if report.baselined_count:
        hidden.append(f"{report.baselined_count} baselined")
    hidden_note = f" ({', '.join(hidden)})" if hidden else ""
    if report.ok:
        lines.append(
            f"dplint: {report.files_checked} file(s) checked, no findings"
            + hidden_note
        )
    else:
        lines.append(
            f"dplint: {report.files_checked} file(s) checked, "
            f"{len(report.findings)} finding(s): {summary}{hidden_note}"
        )
    for entry in report.stale_baseline:
        lines.append(f"dplint: stale baseline entry (fixed? remove it): {entry}")
    return "\n".join(lines)


def format_json(report: AnalysisReport) -> str:
    """Machine-readable rendering (stable keys, sorted findings).

    Parameters
    ----------
    report:
        The analyzer outcome to render.
    """
    payload = {
        "files_checked": report.files_checked,
        "suppressed": report.suppressed_count,
        "baselined": report.baselined_count,
        "stale_baseline": list(report.stale_baseline),
        "ok": report.ok,
        "summary": {
            "by_severity": report.count_by_severity(),
            "by_rule": report.count_by_rule(),
        },
        "findings": [finding.to_dict() for finding in report.findings],
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def format_report(report: AnalysisReport, fmt: str = "text") -> str:
    """Render ``report`` in the requested format.

    Parameters
    ----------
    report:
        The analyzer outcome to render.
    fmt:
        One of :data:`FORMATS`.
    """
    if fmt == "text":
        return format_text(report)
    if fmt == "json":
        return format_json(report)
    if fmt == "sarif":
        return format_sarif(report)
    raise ValidationError(f"unknown format {fmt!r}; expected one of {FORMATS}")


def format_rule_catalog() -> str:
    """The rule catalog as aligned text (backs ``--list-rules``)."""
    lines = []
    for rule_class in all_rules():
        lines.append(
            f"{rule_class.id}  {rule_class.name:<26} "
            f"[{rule_class.default_severity}] {rule_class.description}"
        )
    return "\n".join(lines)
