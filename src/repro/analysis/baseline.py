"""Committed suppression baseline for ``dplint``.

A baseline file records *known, justified* findings so the lint gate can
require the tree to be clean **modulo** an explicit, reviewed allowlist.
Entries are keyed by ``(path, rule_id, message)`` — deliberately not by
line number, so unrelated edits above a finding do not invalidate the
baseline. Every entry must carry a non-empty justification; entries that
no longer match anything are reported as *stale* so the file shrinks as
debts are paid.
"""

from __future__ import annotations

import json
from collections.abc import Iterable
from dataclasses import dataclass, field
from pathlib import Path

from repro.analysis.base import PACKAGE_ROOT, package_parts
from repro.analysis.engine import AnalysisReport
from repro.analysis.findings import Finding
from repro.exceptions import ConfigurationError

__all__ = [
    "BASELINE_SCHEMA",
    "BaselineEntry",
    "Baseline",
    "normalize_path",
    "apply_baseline",
]

#: Schema marker written to / required from every baseline file.
BASELINE_SCHEMA = "dplint-baseline/v1"


def normalize_path(path: str) -> str:
    """Stable path key for baseline matching.

    Files under the ``repro`` package normalize to
    ``"repro/<parts...>"`` regardless of checkout location or how the
    analyzer was invoked; anything else falls back to the POSIX form of
    the path as reported.

    Parameters
    ----------
    path:
        Finding path as produced by the analyzer.
    """
    parts = package_parts(path)
    posix = Path(path).as_posix()
    if "/".join(parts) != posix.lstrip("/"):
        return "/".join((PACKAGE_ROOT, *parts))
    return posix


@dataclass(frozen=True)
class BaselineEntry:
    """One allowlisted finding.

    Parameters
    ----------
    path:
        Normalized path (see :func:`normalize_path`).
    rule_id:
        Rule identifier, e.g. ``"DPL010"``.
    message:
        Exact finding message (messages are line-free by construction, so
        they survive unrelated edits).
    count:
        How many identical findings this entry covers.
    justification:
        Why this finding is acceptable — required, non-empty.
    """

    path: str
    rule_id: str
    message: str
    count: int = 1
    justification: str = ""

    @property
    def key(self) -> tuple[str, str, str]:
        """Matching key: normalized path, rule id, message."""
        return (self.path, self.rule_id, self.message)

    def to_dict(self) -> dict:
        """JSON representation used in the baseline file."""
        return {
            "path": self.path,
            "rule_id": self.rule_id,
            "message": self.message,
            "count": self.count,
            "justification": self.justification,
        }


@dataclass
class Baseline:
    """A set of allowlisted findings loaded from (or bound for) disk."""

    entries: list[BaselineEntry] = field(default_factory=list)

    @classmethod
    def load(cls, path: str | Path) -> "Baseline":
        """Read and validate a baseline file.

        Parameters
        ----------
        path:
            The baseline JSON file.
        """
        path = Path(path)
        try:
            data = json.loads(path.read_text(encoding="utf-8"))
        except OSError as error:
            raise ConfigurationError(
                f"cannot read baseline {path}: {error}"
            ) from error
        except json.JSONDecodeError as error:
            raise ConfigurationError(
                f"baseline {path} is not valid JSON: {error}"
            ) from error
        if not isinstance(data, dict) or data.get("schema") != BASELINE_SCHEMA:
            raise ConfigurationError(
                f"baseline {path} must declare schema {BASELINE_SCHEMA!r}"
            )
        raw_entries = data.get("entries", [])
        if not isinstance(raw_entries, list):
            raise ConfigurationError(f"baseline {path}: entries must be a list")
        entries = []
        for position, raw in enumerate(raw_entries):
            if not isinstance(raw, dict):
                raise ConfigurationError(
                    f"baseline {path}: entry {position} must be an object"
                )
            missing = {"path", "rule_id", "message"} - set(raw)
            if missing:
                raise ConfigurationError(
                    f"baseline {path}: entry {position} lacks {sorted(missing)}"
                )
            justification = str(raw.get("justification", "")).strip()
            if not justification:
                raise ConfigurationError(
                    f"baseline {path}: entry {position} "
                    f"({raw['rule_id']} at {raw['path']}) has no "
                    "justification; every baselined finding must say why "
                    "it is acceptable"
                )
            count = raw.get("count", 1)
            if not isinstance(count, int) or count < 1:
                raise ConfigurationError(
                    f"baseline {path}: entry {position} count must be a "
                    "positive integer"
                )
            entries.append(
                BaselineEntry(
                    path=str(raw["path"]),
                    rule_id=str(raw["rule_id"]),
                    message=str(raw["message"]),
                    count=count,
                    justification=justification,
                )
            )
        return cls(entries=entries)

    def save(self, path: str | Path) -> None:
        """Write the baseline to ``path`` (stable key order, sorted entries).

        Parameters
        ----------
        path:
            Destination file.
        """
        payload = {
            "schema": BASELINE_SCHEMA,
            "entries": [
                entry.to_dict()
                for entry in sorted(self.entries, key=lambda e: e.key)
            ],
        }
        Path(path).write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )

    @classmethod
    def from_findings(
        cls,
        findings: Iterable[Finding],
        *,
        justifications: dict[tuple[str, str, str], str] | None = None,
        default_justification: str = "baselined pre-existing finding",
    ) -> "Baseline":
        """Build a baseline covering ``findings``.

        Parameters
        ----------
        findings:
            The findings to allowlist.
        justifications:
            Optional per-key justification overrides (used to preserve
            reviewed text when refreshing an existing baseline).
        default_justification:
            Placeholder for keys without an override; authors are expected
            to replace it before committing.
        """
        counts: dict[tuple[str, str, str], int] = {}
        for finding in findings:
            key = (normalize_path(finding.path), finding.rule_id, finding.message)
            counts[key] = counts.get(key, 0) + 1
        overrides = justifications or {}
        entries = [
            BaselineEntry(
                path=path,
                rule_id=rule_id,
                message=message,
                count=count,
                justification=overrides.get(
                    (path, rule_id, message), default_justification
                ),
            )
            for (path, rule_id, message), count in counts.items()
        ]
        return cls(entries=sorted(entries, key=lambda e: e.key))


def apply_baseline(report: AnalysisReport, baseline: Baseline) -> AnalysisReport:
    """Filter a report through a baseline, tracking stale entries.

    Each entry absorbs up to ``count`` identical findings; absorbed
    findings move into ``baselined_count``. Entries that absorb nothing
    are recorded in ``stale_baseline`` so the caller can demand the file
    be re-trimmed (a stale entry means the debt was paid — keeping it
    would let a regression sneak back in unnoticed).

    Parameters
    ----------
    report:
        The raw analyzer report.
    baseline:
        The loaded allowlist.
    """
    budget: dict[tuple[str, str, str], int] = {}
    for entry in baseline.entries:
        budget[entry.key] = budget.get(entry.key, 0) + entry.count
    used: dict[tuple[str, str, str], int] = {key: 0 for key in budget}
    kept: list[Finding] = []
    absorbed = 0
    for finding in report.findings:
        key = (normalize_path(finding.path), finding.rule_id, finding.message)
        if key in budget and used[key] < budget[key]:
            used[key] += 1
            absorbed += 1
        else:
            kept.append(finding)
    stale = [
        f"{key[1]} at {key[0]}: {key[2]}"
        for key in sorted(budget)
        if used[key] == 0
    ]
    return AnalysisReport(
        findings=kept,
        files_checked=report.files_checked,
        suppressed_count=report.suppressed_count,
        baselined_count=report.baselined_count + absorbed,
        stale_baseline=report.stale_baseline + stale,
    )
