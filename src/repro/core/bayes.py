"""Private Bayesian inference by posterior sampling ("privacy for free").

With the negative log-likelihood as the loss, the paper's Gibbs posterior
at temperature λ *is* the tempered Bayesian posterior

    p_λ(θ | x₁…xₙ)  ∝  π(θ) · Π p(xᵢ | θ)^λ        (λ = 1: exact Bayes),

so Theorem 4.1 specializes to the posterior-sampling privacy result of
Dimitrakakis et al. / Wang–Fienberg–Smola: if the log-likelihood of one
observation varies by at most B over the (truncated) parameter space,
releasing one posterior sample is ``2·λ·B``-differentially private.

:class:`TruncatedBetaBernoulliPosterior` instantiates this exactly for
the Beta–Bernoulli model with θ truncated to ``[a, 1-a]`` (truncation is
what makes B finite), using closed-form Beta posteriors — no grids, no
MCMC — with privacy read off the truncation level.
"""

from __future__ import annotations

import numpy as np
from scipy.stats import beta as beta_distribution

from repro.exceptions import ValidationError
from repro.mechanisms.base import Mechanism, PrivacySpec
from repro.utils.validation import check_in_range, check_positive, check_random_state


def bernoulli_log_likelihood_range(truncation: float) -> float:
    """``B = sup |log p(x|θ) - log p(x'|θ)|`` for θ ∈ [a, 1-a].

    The extreme ratio is between observing 1 and 0 at an endpoint:
    ``B = log((1-a)/a)``.
    """
    truncation = check_in_range(
        truncation, name="truncation", low=0.0, high=0.5, inclusive=False
    )
    return float(np.log((1.0 - truncation) / truncation))


def posterior_sampling_privacy(temperature: float, log_likelihood_range: float) -> float:
    """Theorem 4.1 specialized: one tempered-posterior sample is
    ``2·λ·B``-DP (substitution neighbours)."""
    temperature = check_positive(temperature, name="temperature")
    log_likelihood_range = check_positive(
        log_likelihood_range, name="log_likelihood_range"
    )
    return 2.0 * temperature * log_likelihood_range


def temperature_for_posterior_privacy(
    epsilon: float, log_likelihood_range: float
) -> float:
    """Inverse calibration: ``λ = ε / (2B)``.

    Note the temperature is *per release*, independent of n: more data
    sharpens the posterior for free, unlike the risk-based calibration
    where Δ(R̂) shrinks with n.
    """
    epsilon = check_positive(epsilon, name="epsilon")
    log_likelihood_range = check_positive(
        log_likelihood_range, name="log_likelihood_range"
    )
    return epsilon / (2.0 * log_likelihood_range)


class TruncatedBetaBernoulliPosterior(Mechanism):
    """ε-DP Bernoulli-bias estimation by tempered-posterior sampling.

    Parameters
    ----------
    epsilon:
        Privacy target per released sample.
    truncation:
        θ is restricted to ``[truncation, 1 - truncation]``; smaller
        truncation → larger likelihood range B → colder posterior needed.
    prior_alpha, prior_beta:
        Beta prior hyperparameters.
    """

    def __init__(
        self,
        epsilon: float,
        *,
        truncation: float = 0.05,
        prior_alpha: float = 1.0,
        prior_beta: float = 1.0,
    ) -> None:
        super().__init__(PrivacySpec(epsilon=epsilon))
        self.truncation = check_in_range(
            truncation, name="truncation", low=0.0, high=0.5, inclusive=False
        )
        self.prior_alpha = check_positive(prior_alpha, name="prior_alpha")
        self.prior_beta = check_positive(prior_beta, name="prior_beta")
        self.log_likelihood_range = bernoulli_log_likelihood_range(truncation)
        self.temperature = temperature_for_posterior_privacy(
            epsilon, self.log_likelihood_range
        )

    def posterior_parameters(self, data) -> tuple[float, float]:
        """Tempered-posterior Beta parameters ``(α + λk, β + λ(n-k))``.

        Tempering raises the likelihood to the power λ, which for the
        Bernoulli model simply scales the sufficient statistics.
        """
        bits = np.asarray(data, dtype=int)
        if bits.size == 0 or not np.isin(bits, (0, 1)).all():
            raise ValidationError("data must be a nonempty 0/1 array")
        successes = float(bits.sum())
        failures = float(bits.size - bits.sum())
        return (
            self.prior_alpha + self.temperature * successes,
            self.prior_beta + self.temperature * failures,
        )

    def _truncated_cdf_bounds(self, alpha: float, beta: float) -> tuple[float, float]:
        low = beta_distribution.cdf(self.truncation, alpha, beta)
        high = beta_distribution.cdf(1.0 - self.truncation, alpha, beta)
        return float(low), float(high)

    def release(self, data, random_state=None) -> float:
        """One exact sample from the truncated tempered posterior.

        Inverse-CDF sampling restricted to the truncation interval — no
        rejection loop, no MCMC error, so the nominal guarantee is exact.
        """
        rng = check_random_state(random_state)
        alpha, beta = self.posterior_parameters(data)
        low, high = self._truncated_cdf_bounds(alpha, beta)
        u = low + (high - low) * rng.uniform()
        return float(beta_distribution.ppf(u, alpha, beta))

    def posterior_mean(self, data) -> float:
        """Mean of the truncated tempered posterior (itself NOT private —
        it is deterministic in the data; use :meth:`release`)."""
        alpha, beta = self.posterior_parameters(data)
        low, high = self._truncated_cdf_bounds(alpha, beta)
        # E[θ | truncated] via the Beta(α+1, β) identity.
        weight = alpha / (alpha + beta)
        numerator = beta_distribution.cdf(
            1.0 - self.truncation, alpha + 1, beta
        ) - beta_distribution.cdf(self.truncation, alpha + 1, beta)
        return float(weight * numerator / (high - low))

    def posterior_density(self, data, theta) -> float:
        """Truncated tempered posterior density at θ (exact, normalized)."""
        theta = float(theta)
        if not self.truncation <= theta <= 1.0 - self.truncation:
            return 0.0
        alpha, beta = self.posterior_parameters(data)
        low, high = self._truncated_cdf_bounds(alpha, beta)
        return float(beta_distribution.pdf(theta, alpha, beta) / (high - low))

    def mean_squared_error(self, data, truth: float, *, n_samples: int = 1000,
                           random_state=None) -> float:
        """Monte-Carlo MSE of released samples around a known truth."""
        rng = check_random_state(random_state)
        draws = np.asarray(
            self.release_many(data, n_samples, random_state=rng), dtype=float
        )
        return float(((draws - float(truth)) ** 2).mean())
