"""Mutual-information-regularized learning (Section 4, Theorem 4.2).

The paper's information-theoretic reading of differentially-private
learning: choose a *channel* (a map from samples Ẑ to posteriors over Θ)
minimizing

    ``J(channel) = E_Ẑ E_{θ~π̂_Ẑ} R̂_Ẑ(θ)  +  (1/ε) · I(Ẑ; θ)``

— expected empirical risk plus mutual information between sample and
predictor, weighted by the inverse privacy parameter. Theorem 4.2: the
minimizer is the Gibbs channel ``π̂_Ẑ ∝ q(θ)·e^{-ε R̂_Ẑ(θ)}`` whose prior q
is its own output marginal ``E_Ẑ π̂`` (the bound-optimal prior).

Computationally, ``ε·J`` is the rate–distortion Lagrangian with distortion
``d(Ẑ, θ) = R̂_Ẑ(θ)`` and multiplier β = ε, so the Blahut–Arimoto solver
of :mod:`repro.information.blahut_arimoto` finds the optimum and this
module translates it back into learning vocabulary.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from repro.distributions.discrete import DiscreteDistribution
from repro.exceptions import ValidationError
from repro.information.blahut_arimoto import rate_distortion
from repro.information.channel import DiscreteChannel
from repro.information.mutual_information import mutual_information_from_joint
from repro.utils.numerics import logsumexp, stable_log
from repro.utils.validation import check_positive, check_probability_vector


def tradeoff_objective(
    channel_matrix, source, risk_matrix, epsilon: float
) -> float:
    """Evaluate ``J = E R̂ + (1/ε)·I(Ẑ;θ)`` for an arbitrary channel."""
    epsilon = check_positive(epsilon, name="epsilon")
    p = check_probability_vector(source, name="source")
    channel = np.asarray(channel_matrix, dtype=float)
    risks = np.asarray(risk_matrix, dtype=float)
    if channel.shape != risks.shape or channel.shape[0] != p.shape[0]:
        raise ValidationError(
            "channel_matrix and risk_matrix must share shape (n_samples, n_thetas)"
        )
    joint = p[:, None] * channel
    expected_risk = float((joint * risks).sum())
    information = mutual_information_from_joint(joint)
    return expected_risk + information / epsilon


def gibbs_channel_matrix(prior_probs, risk_matrix, temperature: float) -> np.ndarray:
    """Rows ``K(θ|Ẑ) ∝ prior(θ)·exp(-λ·R̂_Ẑ(θ))`` — the Gibbs kernel."""
    temperature = check_positive(temperature, name="temperature")
    prior = check_probability_vector(prior_probs, name="prior_probs")
    risks = np.asarray(risk_matrix, dtype=float)
    if risks.ndim != 2 or risks.shape[1] != prior.shape[0]:
        raise ValidationError("risk_matrix must have one column per prior atom")
    log_weights = stable_log(prior)[None, :] - temperature * risks
    log_norms = logsumexp(log_weights, axis=1)
    return np.exp(log_weights - np.asarray(log_norms)[:, None])


@dataclass
class TradeoffResult:
    """Solution of the MI-regularized minimization for one ε.

    Attributes
    ----------
    epsilon:
        The privacy parameter weighting the information term.
    channel:
        The optimal :class:`DiscreteChannel` from samples to predictors.
    optimal_prior:
        The output marginal ``E_Ẑ π̂`` — the bound-optimal prior.
    mutual_information:
        ``I(Ẑ; θ)`` at the optimum, nats.
    expected_empirical_risk:
        ``E_Ẑ E_π̂ R̂`` at the optimum.
    objective:
        ``J = expected risk + I/ε``.
    gibbs_deviation:
        Max total-variation distance between the optimal channel's rows and
        the Gibbs tilt of the optimal prior — Theorem 4.2 says this is 0 at
        the fixed point (up to solver tolerance).
    iterations / converged:
        Solver diagnostics.
    """

    epsilon: float
    channel: DiscreteChannel
    optimal_prior: DiscreteDistribution
    mutual_information: float
    expected_empirical_risk: float
    objective: float
    gibbs_deviation: float
    iterations: int
    converged: bool


def minimize_tradeoff(
    source,
    risk_matrix,
    epsilon: float,
    *,
    dataset_labels: Sequence | None = None,
    theta_labels: Sequence | None = None,
    tol: float = 1e-13,
    max_iterations: int = 50_000,
) -> TradeoffResult:
    """Solve ``min_channel E R̂ + (1/ε)·I(Ẑ;θ)`` exactly (finite spaces).

    Parameters
    ----------
    source:
        Law of the sample Ẑ over the dataset universe (rows of the risk
        matrix).
    risk_matrix:
        ``R̂[i, j]`` = empirical risk of predictor j on dataset i.
    epsilon:
        Privacy parameter (the paper's ε; larger ε → information is
        penalized less → lower risk, higher leakage).
    dataset_labels / theta_labels:
        Optional human-readable labels for the channel alphabets.
    """
    epsilon = check_positive(epsilon, name="epsilon")
    risks = np.asarray(risk_matrix, dtype=float)
    p = check_probability_vector(source, name="source")

    result = rate_distortion(
        p, risks, beta=epsilon, tol=tol, max_iterations=max_iterations
    )

    n_datasets, n_thetas = risks.shape
    inputs = (
        list(dataset_labels)
        if dataset_labels is not None
        else list(range(n_datasets))
    )
    outputs = (
        list(theta_labels) if theta_labels is not None else list(range(n_thetas))
    )
    if len(inputs) != n_datasets or len(outputs) != n_thetas:
        raise ValidationError("labels must match the risk matrix dimensions")

    channel = DiscreteChannel(inputs, outputs, result.channel_matrix)
    optimal_prior = DiscreteDistribution(outputs, result.output_distribution)

    gibbs = gibbs_channel_matrix(result.output_distribution, risks, epsilon)
    deviation = float(
        0.5 * np.abs(result.channel_matrix - gibbs).sum(axis=1).max()
    )

    return TradeoffResult(
        epsilon=epsilon,
        channel=channel,
        optimal_prior=optimal_prior,
        mutual_information=result.rate,
        expected_empirical_risk=result.distortion,
        objective=result.distortion + result.rate / epsilon,
        gibbs_deviation=deviation,
        iterations=result.iterations,
        converged=result.converged,
    )


@dataclass
class TradeoffPoint:
    """One point on the privacy–information–risk frontier."""

    epsilon: float
    mutual_information: float
    expected_empirical_risk: float
    objective: float


def tradeoff_curve(
    source, risk_matrix, epsilons: Sequence[float]
) -> list[TradeoffPoint]:
    """Sweep ε and trace the frontier (Experiment E6, Figure 1 measured).

    The paper's qualitative claim: as ε grows, the optimizer tolerates more
    mutual information and achieves lower risk; as ε → 0 the channel
    releases (near-)nothing. Both monotonicities are asserted in the tests.
    """
    if not len(epsilons):
        raise ValidationError("epsilons must not be empty")
    points = []
    for epsilon in epsilons:
        result = minimize_tradeoff(source, risk_matrix, float(epsilon))
        points.append(
            TradeoffPoint(
                epsilon=float(epsilon),
                mutual_information=result.mutual_information,
                expected_empirical_risk=result.expected_empirical_risk,
                objective=result.objective,
            )
        )
    return points
