"""The learning channel of Figure 1, made concrete and measurable.

The paper's closing picture: differentially-private learning *is* an
information channel whose input is the secret sample Ẑ (drawn i.i.d. from
Q) and whose output is the predictor θ, with transition kernel
``P(θ | Ẑ) = π̂_Ẑ`` — the Gibbs posterior. :class:`LearningChannel`
instantiates that channel exactly on a finite data universe: it enumerates
every possible sample of size n, weights it by the product law Qⁿ, and
exposes the quantities the paper reasons about — the mutual information
``I(Ẑ; θ)``, the bound-optimal prior ``E_Ẑ π̂``, the adversary's Bayes
posterior over secrets given a released predictor, and the exact privacy
loss over neighbouring samples.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence

import numpy as np

from repro.distributions.discrete import DiscreteDistribution
from repro.exceptions import ValidationError
from repro.information.channel import DiscreteChannel
from repro.information.divergences import max_divergence
from repro.privacy.definitions import is_neighbour


class LearningChannel:
    """Exact channel Ẑ → θ for a posterior map on a finite data universe.

    Parameters
    ----------
    data_law:
        Distribution Q of a single observation Z over a finite universe.
    n:
        Sample size; channel inputs are all ``|universe|^n`` ordered
        samples.
    posterior_map:
        ``posterior_map(sample: list) -> DiscreteDistribution`` over a
        fixed predictor support — e.g. ``GibbsPosterior(...).posterior``.
    """

    def __init__(
        self,
        data_law: DiscreteDistribution,
        n: int,
        posterior_map: Callable[[Sequence], DiscreteDistribution],
    ) -> None:
        if n < 1:
            raise ValidationError("n must be >= 1")
        self.data_law = data_law
        self.n = int(n)
        self.posterior_map = posterior_map

        self.sample_law = data_law.power(n)
        conditionals = {
            sample: posterior_map(list(sample))
            for sample, _ in self.sample_law
        }
        self.channel = DiscreteChannel.from_conditionals(conditionals)

    # ------------------------------------------------------------------
    @property
    def samples(self) -> tuple:
        """Every possible sample (ordered tuples of universe outcomes)."""
        return self.channel.input_alphabet

    @property
    def predictors(self) -> tuple:
        """The predictor support (the channel output alphabet)."""
        return self.channel.output_alphabet

    def mutual_information(self) -> float:
        """``I(Ẑ; θ)`` in nats under Qⁿ and the posterior map."""
        return self.channel.mutual_information(self.sample_law)

    def sample_entropy(self) -> float:
        """``H(Ẑ)`` — the ceiling no channel can leak more than."""
        return self.sample_law.entropy()

    def optimal_prior(self) -> DiscreteDistribution:
        """The marginal predictor law ``E_Ẑ π̂`` — the bound-optimal prior
        that collapses ``E_Ẑ KL(π̂‖π)`` to the mutual information."""
        return self.channel.output_distribution(self.sample_law)

    def adversary_posterior(self, predictor) -> DiscreteDistribution:
        """What a Bayesian adversary who observes the released predictor
        learns about the secret sample."""
        return self.channel.posterior(self.sample_law, predictor)

    def expected_risk(self, risk: Callable[[Sequence, object], float]) -> float:
        """``E_Ẑ E_{θ~π̂} risk(Ẑ, θ)`` for an arbitrary risk function."""
        total = 0.0
        for sample, weight in self.sample_law:
            conditional = self.channel.conditional(sample)
            for theta, prob in conditional:
                total += weight * prob * float(risk(list(sample), theta))
        return total

    def exact_privacy_loss(self) -> float:
        """Worst-case ε over *neighbouring* samples (exact enumeration).

        This is the measured left side of Theorem 4.1's inequality; the
        declared right side is ``2·λ·Δ(R̂)``.
        """
        worst = 0.0
        samples = self.samples
        for a in samples:
            law_a = self.channel.conditional(a)
            for b in samples:
                if not is_neighbour(a, b):
                    continue
                worst = max(worst, max_divergence(law_a, self.channel.conditional(b)))
        return worst

    def leakage_summary(self) -> dict:
        """The Figure-1 dashboard: all channel quantities in one dict."""
        information = self.mutual_information()
        entropy = self.sample_entropy()
        return {
            "n": self.n,
            "num_samples": len(self.samples),
            "num_predictors": len(self.predictors),
            "mutual_information": information,
            "sample_entropy": entropy,
            "leakage_fraction": information / entropy if entropy > 0 else 0.0,
            "exact_privacy_loss": self.exact_privacy_loss(),
        }

    def __repr__(self) -> str:
        return (
            f"LearningChannel(n={self.n}, samples={len(self.samples)}, "
            f"predictors={len(self.predictors)})"
        )
