"""PAC-Bayesian generalization bounds (Section 3 of the paper).

All bounds take a posterior π̂ and a prior π on a predictor space and hold,
with probability at least 1-δ over the draw of the size-n sample,
*simultaneously for every posterior*. Losses are assumed bounded in [0, 1]
(rescale otherwise).

* :func:`catoni_bound` — Theorem 3.1 (Catoni 2007): for fixed λ > 0,

    ``E_π̂ R ≤ Φ⁻¹( E_π̂ R̂ + (KL(π̂‖π) + ln(1/δ)) / λ )``

  where ``Φ(p) = (1 - e^{-λp/n})·n/λ`` — written out below without the
  helper. Minimizing it over π̂ (Lemma 3.2) yields the Gibbs posterior at
  temperature λ.
* :func:`mcallester_bound` — the classical square-root bound.
* :func:`seeger_bound` — the binary-KL (Langford–Seeger) bound, usually
  the tightest of the three.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.optimize import minimize

from repro.distributions.discrete import DiscreteDistribution
from repro.exceptions import ValidationError
from repro.information.divergences import binary_kl_inverse, kl_divergence
from repro.utils.numerics import logsumexp
from repro.utils.validation import check_in_range, check_positive


def _check_common(empirical_risk: float, kl: float, n: int, delta: float):
    empirical_risk = check_in_range(
        empirical_risk, name="empirical_risk", low=0.0, high=1.0
    )
    kl = check_positive(kl, name="kl", strict=False)
    if n < 1:
        raise ValidationError("n must be >= 1")
    delta = check_in_range(delta, name="delta", low=0.0, high=1.0, inclusive=False)
    return empirical_risk, kl, int(n), delta


def catoni_bound(
    empirical_risk: float, kl: float, n: int, temperature: float, delta: float
) -> float:
    """Catoni's PAC-Bayes bound (the paper's Theorem 3.1) on ``E_π̂ R``.

    ``(1 - exp(-(λ/n)·E_π̂R̂ - (KL + ln(1/δ))/n)) / (1 - exp(-λ/n))``

    Parameters
    ----------
    empirical_risk:
        The Gibbs risk on the sample, ``E_π̂ R̂`` ∈ [0, 1].
    kl:
        ``KL(π̂ ‖ π)`` in nats.
    n:
        Sample size.
    temperature:
        Catoni's λ > 0 (must be chosen before seeing the data).
    delta:
        Confidence parameter.

    Returns a value that may exceed 1 (a vacuous but still valid bound).
    """
    empirical_risk, kl, n, delta = _check_common(empirical_risk, kl, n, delta)
    temperature = check_positive(temperature, name="temperature")
    rate = temperature / n
    exponent = -rate * empirical_risk - (kl + np.log(1.0 / delta)) / n
    return float((1.0 - np.exp(exponent)) / (1.0 - np.exp(-rate)))


def catoni_bound_in_expectation(
    expected_empirical_risk: float, expected_kl: float, n: int, temperature: float
) -> float:
    """The in-expectation form (Equation 1 of the paper): a bound on
    ``E_Ẑ E_π̂ R`` with the δ term dropped and risks/KL averaged over the
    sample draw. Combined with the decomposition
    ``E_Ẑ KL(π̂‖π) = I(Ẑ;θ) + KL(E_Ẑπ̂ ‖ π)`` this is the bridge from
    PAC-Bayes to the mutual-information view of Section 4.
    """
    expected_empirical_risk = check_in_range(
        expected_empirical_risk, name="expected_empirical_risk", low=0.0, high=1.0
    )
    expected_kl = check_positive(expected_kl, name="expected_kl", strict=False)
    if n < 1:
        raise ValidationError("n must be >= 1")
    temperature = check_positive(temperature, name="temperature")
    rate = temperature / n
    exponent = -rate * expected_empirical_risk - expected_kl / n
    return float((1.0 - np.exp(exponent)) / (1.0 - np.exp(-rate)))


def mcallester_bound(empirical_risk: float, kl: float, n: int, delta: float) -> float:
    """McAllester's bound: ``E R̂ + sqrt((KL + ln(2√n/δ)) / (2n))``."""
    empirical_risk, kl, n, delta = _check_common(empirical_risk, kl, n, delta)
    complexity = (kl + np.log(2.0 * np.sqrt(n) / delta)) / (2.0 * n)
    return float(empirical_risk + np.sqrt(complexity))


def seeger_bound(empirical_risk: float, kl: float, n: int, delta: float) -> float:
    """Langford–Seeger bound: invert ``kl(E R̂ ‖ ·) ≤ (KL + ln(2√n/δ))/n``."""
    empirical_risk, kl, n, delta = _check_common(empirical_risk, kl, n, delta)
    budget = (kl + np.log(2.0 * np.sqrt(n) / delta)) / n
    return binary_kl_inverse(empirical_risk, budget)


def catoni_objective(
    posterior: DiscreteDistribution,
    prior: DiscreteDistribution,
    empirical_risks: np.ndarray,
    temperature: float,
) -> float:
    """The quantity Catoni's bound is monotone in:
    ``λ·E_π̂ R̂ + KL(π̂ ‖ π)``. Lemma 3.2's Gibbs posterior minimizes it."""
    prior.require_same_support(posterior)
    risks = np.asarray(empirical_risks, dtype=float)
    if risks.shape[0] != len(posterior):
        raise ValidationError("empirical_risks must match the support size")
    temperature = check_positive(temperature, name="temperature")
    expected_risk = float(risks @ posterior.probabilities)
    return temperature * expected_risk + kl_divergence(posterior, prior)


def gibbs_minimizer(
    prior: DiscreteDistribution, empirical_risks, temperature: float
) -> DiscreteDistribution:
    """The closed-form minimizer of :func:`catoni_objective` (Lemma 3.2)."""
    risks = np.asarray(empirical_risks, dtype=float)
    temperature = check_positive(temperature, name="temperature")
    return prior.tilt(-temperature * risks)


def optimal_objective_value(
    prior: DiscreteDistribution, empirical_risks, temperature: float
) -> float:
    """Closed-form minimum: ``-log E_π exp(-λ R̂)`` (the free energy × λ)."""
    risks = np.asarray(empirical_risks, dtype=float)
    return float(-logsumexp(prior.log_probabilities - temperature * risks))


def minimize_catoni_bound(
    prior: DiscreteDistribution,
    empirical_risks,
    temperature: float,
    *,
    numerical: bool = False,
) -> tuple[DiscreteDistribution, float]:
    """Minimize the Catoni objective over all posteriors on the support.

    Returns ``(posterior, objective_value)``. With ``numerical=True`` the
    minimization is redone with a generic simplex optimizer (SLSQP over
    softmax-parametrized weights) instead of the closed form — Experiment
    E3 uses this to confirm the optimizer lands on the Gibbs posterior.
    """
    risks = np.asarray(empirical_risks, dtype=float)
    closed_form = gibbs_minimizer(prior, risks, temperature)
    if not numerical:
        return closed_form, catoni_objective(closed_form, prior, risks, temperature)

    size = len(prior)

    def objective(logits: np.ndarray) -> float:
        shifted = logits - logits.max()
        probs = np.exp(shifted)
        probs /= probs.sum()
        post = DiscreteDistribution(prior.support, probs)
        return catoni_objective(post, prior, risks, temperature)

    result = minimize(
        objective,
        x0=np.zeros(size),
        method="Nelder-Mead" if size <= 8 else "Powell",
        options={"maxiter": 20_000, "xatol": 1e-10, "fatol": 1e-12}
        if size <= 8
        else {"maxiter": 20_000},
    )
    shifted = result.x - result.x.max()
    probs = np.exp(shifted)
    probs /= probs.sum()
    numerical_posterior = DiscreteDistribution(prior.support, probs)
    return numerical_posterior, float(result.fun)


@dataclass
class BoundReport:
    """All three bounds evaluated for one (posterior, sample) pair."""

    empirical_risk: float
    kl: float
    n: int
    delta: float
    temperature: float
    catoni: float
    mcallester: float
    seeger: float

    def tightest(self) -> tuple[str, float]:
        """Name and value of the smallest bound."""
        candidates = {
            "catoni": self.catoni,
            "mcallester": self.mcallester,
            "seeger": self.seeger,
        }
        name = min(candidates, key=candidates.get)
        return name, candidates[name]


def evaluate_all_bounds(
    posterior: DiscreteDistribution,
    prior: DiscreteDistribution,
    empirical_risks,
    n: int,
    *,
    delta: float = 0.05,
    temperature: float | None = None,
) -> BoundReport:
    """Evaluate Catoni, McAllester and Seeger for one posterior.

    ``temperature`` defaults to ``sqrt(n)`` — a standard a-priori choice
    that balances the two Catoni terms.
    """
    risks = np.asarray(empirical_risks, dtype=float)
    gibbs_risk = float(risks @ posterior.probabilities)
    kl = kl_divergence(posterior, prior)
    if temperature is None:
        temperature = float(np.sqrt(n))
    return BoundReport(
        empirical_risk=gibbs_risk,
        kl=kl,
        n=int(n),
        delta=float(delta),
        temperature=float(temperature),
        catoni=catoni_bound(gibbs_risk, kl, n, temperature, delta),
        mcallester=mcallester_bound(gibbs_risk, kl, n, delta),
        seeger=seeger_bound(gibbs_risk, kl, n, delta),
    )
