"""Data-independent generalization bounds (the paper's §3 foil).

Section 3 contrasts PAC-Bayes with "bounds such as the VC-Dimension
bounds", where "the data-dependencies only come from the empirical risk"
and which "are often loose" as a result. To make that comparison
measurable (Experiment E16) this module implements the two standard
uniform bounds:

* :func:`occam_bound` — for a finite class of size M, w.p. ≥ 1−δ every
  θ satisfies ``R(θ) ≤ R̂(θ) + sqrt((ln M + ln(1/δ)) / (2n))`` (Hoeffding
  + union bound);
* :func:`vc_bound` — for a class of VC dimension d, w.p. ≥ 1−δ every θ
  satisfies ``R ≤ R̂ + sqrt( (d·(ln(2n/d)+1) + ln(4/δ)) / n )`` (the
  classical Vapnik bound).

Both hold uniformly, so they certify the ERM; PAC-Bayes instead certifies
the Gibbs posterior and *adapts* to its concentration — the gap between
the two is the paper's motivation for going data-dependent.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ValidationError
from repro.utils.validation import check_in_range


def _check(empirical_risk: float, n: int, delta: float):
    empirical_risk = check_in_range(
        empirical_risk, name="empirical_risk", low=0.0, high=1.0
    )
    if n < 1:
        raise ValidationError("n must be >= 1")
    delta = check_in_range(delta, name="delta", low=0.0, high=1.0, inclusive=False)
    return empirical_risk, int(n), delta


def occam_bound(
    empirical_risk: float, class_size: int, n: int, delta: float
) -> float:
    """Finite-class uniform bound: ``R̂ + sqrt((ln M + ln(1/δ))/(2n))``."""
    empirical_risk, n, delta = _check(empirical_risk, n, delta)
    if class_size < 1:
        raise ValidationError("class_size must be >= 1")
    slack = np.sqrt((np.log(class_size) + np.log(1.0 / delta)) / (2.0 * n))
    return float(empirical_risk + slack)


def vc_bound(
    empirical_risk: float, vc_dimension: int, n: int, delta: float
) -> float:
    """Vapnik's uniform bound for a class of VC dimension d.

    ``R̂ + sqrt( (d·(ln(2n/d) + 1) + ln(4/δ)) / n )``; requires n ≥ d.
    """
    empirical_risk, n, delta = _check(empirical_risk, n, delta)
    if vc_dimension < 1:
        raise ValidationError("vc_dimension must be >= 1")
    if n < vc_dimension:
        raise ValidationError("the VC bound needs n >= vc_dimension")
    complexity = vc_dimension * (np.log(2.0 * n / vc_dimension) + 1.0)
    slack = np.sqrt((complexity + np.log(4.0 / delta)) / n)
    return float(empirical_risk + slack)


def compare_uniform_vs_pac_bayes(
    grid,
    sample,
    *,
    vc_dimension: int,
    delta: float = 0.05,
    temperature: float | None = None,
) -> dict:
    """Evaluate the §3 comparison on one (grid, sample) pair.

    Returns the Occam and VC certificates of the grid ERM and the
    Catoni/Seeger certificates of the Gibbs posterior at the given
    temperature (default √n), all at overall confidence δ. The values are
    directly comparable: each certifies the true risk of the predictor
    (distribution) it attaches to.
    """
    from repro.core.pac_bayes import evaluate_all_bounds, gibbs_minimizer
    from repro.distributions.discrete import DiscreteDistribution

    sample = list(sample)
    n = len(sample)
    risks = grid.empirical_risks(sample)
    erm_risk = float(risks.min())
    prior = DiscreteDistribution.uniform(grid.thetas)
    if temperature is None:
        temperature = float(np.sqrt(n))
    posterior = gibbs_minimizer(prior, risks, temperature)
    report = evaluate_all_bounds(
        posterior, prior, risks, n, delta=delta, temperature=temperature
    )
    return {
        "erm_empirical_risk": erm_risk,
        "gibbs_empirical_risk": report.empirical_risk,
        "occam": occam_bound(erm_risk, len(grid), n, delta),
        "vc": vc_bound(erm_risk, vc_dimension, n, delta),
        "catoni": report.catoni,
        "seeger": report.seeger,
    }
