"""The Gibbs posterior and the Gibbs estimator.

Lemma 3.2 of the paper: among all posteriors π̂ on Θ, the minimizer of the
PAC-Bayes objective ``λ·E_π̂ R̂(θ) + KL(π̂ ‖ π)`` is the *Gibbs posterior*

    dπ̂_λ(θ)  =  exp(-λ R̂_Ẑ(θ)) dπ(θ) / E_π exp(-λ R̂_Ẑ).

Theorem 4.1: as a randomized learning mechanism (sample θ from π̂_λ) this
is the exponential mechanism with quality ``q = -R̂`` and therefore
``2·λ·Δ(R̂)``-differentially private. For a loss bounded in a width-``B``
interval, ``Δ(R̂) = B/n``, so the guarantee is ``2λB/n`` — and conversely a
target privacy ε calibrates the temperature to ``λ = ε·n / (2B)``.

The guarantee is verified two ways: exactly, by enumeration
(:class:`repro.privacy.ExactPrivacyAuditor` over small universes), and
statistically, by the Monte-Carlo audit harness (the ``gibbs`` family in
:mod:`repro.testing.registry`, run by ``repro audit`` and the
``pytest -m statistical`` tier).
"""

from __future__ import annotations

from collections.abc import Callable, Sequence

import numpy as np

from repro.distributions.discrete import DiscreteDistribution
from repro.distributions.sampling import (
    MetropolisHastingsResult,
    MetropolisHastingsSampler,
)
from repro.exceptions import ValidationError
from repro.learning.erm import PredictorGrid
from repro.mechanisms.base import Mechanism, PrivacySpec
from repro.mechanisms.sensitivity import empirical_risk_sensitivity
from repro.observability import tracer as _trace
from repro.observability.events import CalibrationEvent
from repro.utils.numerics import logsumexp
from repro.utils.validation import check_positive, check_random_state


def _record_calibration(
    label: str, epsilon: float, temperature: float, loss_range: float, n: int
) -> None:
    """Emit a :class:`CalibrationEvent` when tracing is active."""
    tracer = _trace.current()
    if tracer is not None:
        tracer.record(
            CalibrationEvent(
                label=label,
                epsilon=epsilon,
                temperature=temperature,
                loss_range=float(loss_range),
                n=int(n),
            )
        )
        tracer.count("gibbs.calibrations")


def privacy_of_temperature(temperature: float, loss_range: float, n: int) -> float:
    """Theorem 4.1's guarantee: ``ε = 2·λ·Δ(R̂) = 2·λ·loss_range / n``."""
    temperature = check_positive(temperature, name="temperature")
    epsilon = 2.0 * temperature * empirical_risk_sensitivity(loss_range, n)
    _record_calibration("privacy_of_temperature", epsilon, temperature, loss_range, n)
    return epsilon


def temperature_for_privacy(epsilon: float, loss_range: float, n: int) -> float:
    """Inverse calibration: temperature ``λ = ε·n / (2·loss_range)``."""
    epsilon = check_positive(epsilon, name="epsilon")
    temperature = epsilon / (2.0 * empirical_risk_sensitivity(loss_range, n))
    _record_calibration("temperature_for_privacy", epsilon, temperature, loss_range, n)
    return temperature


class GibbsPosterior:
    """The Gibbs posterior over a finite predictor grid.

    Parameters
    ----------
    grid:
        The finite predictor space with its bounded loss.
    temperature:
        The inverse temperature λ (the paper writes ε in the Gibbs
        expression; we say *temperature* to keep it distinct from the
        privacy parameter).
    prior:
        Prior π on the grid (uniform when omitted).
    """

    def __init__(
        self,
        grid: PredictorGrid,
        temperature: float,
        *,
        prior: DiscreteDistribution | None = None,
    ) -> None:
        if not isinstance(grid, PredictorGrid):
            raise ValidationError("grid must be a PredictorGrid")
        self.grid = grid
        self.temperature = check_positive(temperature, name="temperature")
        if prior is None:
            prior = DiscreteDistribution.uniform(grid.thetas)
        elif prior.support != grid.thetas:
            raise ValidationError("prior support must equal the grid (in order)")
        self.prior = prior

    def posterior(self, sample: Sequence) -> DiscreteDistribution:
        """``π̂_λ ∝ π(θ)·exp(-λ R̂_sample(θ))`` — exact, in the log domain."""
        risks = self.grid.empirical_risks(sample)
        return self.prior.tilt(-self.temperature * risks)

    def log_partition(self, sample: Sequence) -> float:
        """``log E_π exp(-λ R̂)`` — the log partition function.

        Its negative over λ is the *free energy*, the closed-form optimum of
        the PAC-Bayes objective (used to cross-check Lemma 3.2 and the
        fixed point of Theorem 4.2).
        """
        risks = self.grid.empirical_risks(sample)
        return float(
            logsumexp(self.prior.log_probabilities - self.temperature * risks)
        )

    def free_energy(self, sample: Sequence) -> float:
        """``-(1/λ) log E_π exp(-λ R̂)`` = min over posteriors of
        ``E_π̂ R̂ + KL(π̂‖π)/λ``."""
        return -self.log_partition(sample) / self.temperature

    def expected_empirical_risk(self, sample: Sequence) -> float:
        """``E_{θ~π̂} R̂(θ)`` under the Gibbs posterior."""
        risks = self.grid.empirical_risks(sample)
        return float(risks @ self.posterior(sample).probabilities)

    def privacy_epsilon(self, n: int) -> float:
        """The Theorem 4.1 guarantee for size-``n`` samples."""
        return privacy_of_temperature(self.temperature, self.grid.loss_range, n)

    def __repr__(self) -> str:
        return (
            f"GibbsPosterior(grid_size={len(self.grid)}, "
            f"temperature={self.temperature:.4g})"
        )


class GibbsEstimator(Mechanism):
    """The Gibbs posterior as a differentially-private learning mechanism.

    ``release(sample)`` draws one predictor from the Gibbs posterior; the
    declared privacy guarantee follows Theorem 4.1.

    Construct either with an explicit ``temperature`` (guarantee derived
    from it and from ``expected_sample_size``) or with
    :meth:`from_privacy` (temperature calibrated to a target ε).
    """

    def __init__(
        self,
        grid: PredictorGrid,
        temperature: float,
        expected_sample_size: int,
        *,
        prior: DiscreteDistribution | None = None,
    ) -> None:
        if expected_sample_size < 1:
            raise ValidationError("expected_sample_size must be >= 1")
        self.gibbs = GibbsPosterior(grid, temperature, prior=prior)
        self.expected_sample_size = int(expected_sample_size)
        super().__init__(
            PrivacySpec(
                epsilon=self.gibbs.privacy_epsilon(self.expected_sample_size)
            )
        )

    @classmethod
    def from_privacy(
        cls,
        grid: PredictorGrid,
        epsilon: float,
        expected_sample_size: int,
        *,
        prior: DiscreteDistribution | None = None,
    ) -> "GibbsEstimator":
        """Calibrate the temperature to achieve ε-DP on size-n samples."""
        temperature = temperature_for_privacy(
            epsilon, grid.loss_range, expected_sample_size
        )
        return cls(
            grid, temperature, expected_sample_size, prior=prior
        )

    def output_distribution(self, sample: Sequence) -> DiscreteDistribution:
        """Exact output law — enables exact auditing and exact utility."""
        self._check_size(sample)
        return self.gibbs.posterior(sample)

    def release(self, sample: Sequence, random_state=None):
        """Draw one predictor θ from the Gibbs posterior of ``sample``."""
        rng = check_random_state(random_state)
        return self.output_distribution(sample).sample(random_state=rng)

    def _release_many(self, sample, n, rng):
        """Vectorized kernel: build the posterior once, sample ``n`` times.

        The Gibbs posterior depends only on ``sample``, so the batch
        computes it once and draws a size-``n`` categorical sample —
        stream-identical to ``n`` sequential :meth:`release` calls.

        Parameters
        ----------
        sample:
            The training sample (length must match the calibration size).
        n:
            Number of releases (≥ 1).
        rng:
            A ready :class:`numpy.random.Generator`.
        """
        return self.output_distribution(sample).sample(size=n, random_state=rng)

    def _check_size(self, sample: Sequence) -> None:
        if len(sample) != self.expected_sample_size:
            raise ValidationError(
                f"the privacy guarantee was calibrated for samples of size "
                f"{self.expected_sample_size}, got {len(sample)}"
            )

    @property
    def temperature(self) -> float:
        return self.gibbs.temperature


class ContinuousGibbsPosterior:
    """Gibbs posterior over ``R^d`` sampled by Metropolis–Hastings.

    For continuous parameter spaces the normalizer ``E_π exp(-λ R̂)`` is
    intractable, but the unnormalized log-density

        ``log π(θ) - λ·R̂_sample(θ)``

    is cheap, which is all MH needs. Used for the private Bayesian linear /
    logistic regression examples.

    Parameters
    ----------
    log_prior:
        Unnormalized log-density of the prior on ``R^d``.
    empirical_risk:
        ``empirical_risk(theta, sample) -> float``.
    dimension:
        Parameter dimension d.
    temperature:
        Inverse temperature λ.
    """

    def __init__(
        self,
        log_prior: Callable[[np.ndarray], float],
        empirical_risk: Callable[[np.ndarray, Sequence], float],
        dimension: int,
        temperature: float,
    ) -> None:
        if dimension < 1:
            raise ValidationError("dimension must be >= 1")
        self.log_prior = log_prior
        self.empirical_risk = empirical_risk
        self.dimension = int(dimension)
        self.temperature = check_positive(temperature, name="temperature")

    def log_density(self, theta: np.ndarray, sample: Sequence) -> float:
        """Unnormalized log posterior density at θ."""
        return float(self.log_prior(theta)) - self.temperature * float(
            self.empirical_risk(theta, sample)
        )

    def sample(
        self,
        sample: Sequence,
        n_draws: int,
        *,
        step_size: float = 0.3,
        burn_in: int = 1_000,
        thin: int = 5,
        initial=None,
        random_state=None,
    ) -> MetropolisHastingsResult:
        """Draw ``n_draws`` (approximately independent) posterior samples."""
        sampler = MetropolisHastingsSampler(
            lambda theta: self.log_density(theta, sample),
            dimension=self.dimension,
            step_size=step_size,
        )
        return sampler.run(
            n_draws,
            burn_in=burn_in,
            thin=thin,
            initial=initial,
            random_state=random_state,
        )

    def privacy_epsilon(self, loss_range: float, n: int) -> float:
        """Theorem 4.1 guarantee, assuming the loss is bounded as declared.

        Note: the guarantee only holds for the *exact* posterior; MH mixes
        toward it, so finite chains give approximate privacy (this caveat
        is inherited from the paper, which assumes exact sampling).
        """
        return privacy_of_temperature(self.temperature, loss_range, n)
