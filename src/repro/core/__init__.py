"""The paper's contribution: Gibbs learning, PAC-Bayes bounds, and the
information-theoretic view of differentially-private learning.

* :mod:`repro.core.gibbs` — the Gibbs posterior/estimator (Lemma 3.2,
  Theorem 4.1);
* :mod:`repro.core.pac_bayes` — Catoni/McAllester/Seeger bounds
  (Theorem 3.1) and their minimization;
* :mod:`repro.core.tradeoff` — mutual-information-regularized risk
  minimization and its Gibbs fixed point (Theorem 4.2);
* :mod:`repro.core.channel` — the learning channel of Figure 1;
* :mod:`repro.core.theorems` — executable checks of each claim.
"""

from repro.core.gibbs import (
    ContinuousGibbsPosterior,
    GibbsEstimator,
    GibbsPosterior,
    privacy_of_temperature,
    temperature_for_privacy,
)
from repro.core.pac_bayes import (
    BoundReport,
    catoni_bound,
    catoni_bound_in_expectation,
    catoni_objective,
    evaluate_all_bounds,
    mcallester_bound,
    minimize_catoni_bound,
    seeger_bound,
)
from repro.core.tradeoff import (
    TradeoffPoint,
    TradeoffResult,
    minimize_tradeoff,
    tradeoff_curve,
    tradeoff_objective,
)
from repro.core.channel import LearningChannel
from repro.core.bayes import (
    TruncatedBetaBernoulliPosterior,
    posterior_sampling_privacy,
    temperature_for_posterior_privacy,
)
from repro.core.information_risk import (
    exact_generalization_gap,
    generalization_report,
    mutual_information_generalization_bound,
    privacy_generalization_bound,
)
from repro.core.model_selection import (
    PrivateSelectionRelease,
    TemperatureSelection,
    private_gibbs_with_selection,
    select_temperature_by_bound,
    select_temperature_private,
)
from repro.core.theorems import (
    TheoremReport,
    check_exponential_mechanism_privacy,
    check_gibbs_bound_optimality,
    check_gibbs_privacy,
    check_tradeoff_fixed_point,
)

__all__ = [
    "BoundReport",
    "ContinuousGibbsPosterior",
    "GibbsEstimator",
    "GibbsPosterior",
    "LearningChannel",
    "PrivateSelectionRelease",
    "TemperatureSelection",
    "TheoremReport",
    "TruncatedBetaBernoulliPosterior",
    "TradeoffPoint",
    "TradeoffResult",
    "catoni_bound",
    "catoni_bound_in_expectation",
    "catoni_objective",
    "check_exponential_mechanism_privacy",
    "check_gibbs_bound_optimality",
    "check_gibbs_privacy",
    "check_tradeoff_fixed_point",
    "evaluate_all_bounds",
    "exact_generalization_gap",
    "generalization_report",
    "mcallester_bound",
    "minimize_catoni_bound",
    "minimize_tradeoff",
    "mutual_information_generalization_bound",
    "privacy_generalization_bound",
    "private_gibbs_with_selection",
    "privacy_of_temperature",
    "posterior_sampling_privacy",
    "seeger_bound",
    "select_temperature_by_bound",
    "select_temperature_private",
    "temperature_for_privacy",
    "temperature_for_posterior_privacy",
    "tradeoff_curve",
    "tradeoff_objective",
]
