"""Executable checks of the paper's formal claims.

Each function turns one theorem into a machine-checkable experiment on a
finite universe and returns a :class:`TheoremReport` with the measured and
claimed quantities. The test suite asserts ``holds`` for all of them; the
benchmarks sweep their parameters.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, field

import numpy as np

from repro.core.gibbs import GibbsPosterior
from repro.core.pac_bayes import (
    catoni_objective,
    gibbs_minimizer,
    minimize_catoni_bound,
    optimal_objective_value,
)
from repro.core.tradeoff import (
    gibbs_channel_matrix,
    minimize_tradeoff,
    tradeoff_objective,
)
from repro.distributions.discrete import DiscreteDistribution
from repro.exceptions import ValidationError
from repro.learning.erm import PredictorGrid
from repro.mechanisms.exponential import ExponentialMechanism
from repro.privacy.audit import ExactPrivacyAuditor
from repro.utils.validation import check_positive, check_random_state


@dataclass
class TheoremReport:
    """Outcome of one executable theorem check.

    Attributes
    ----------
    name:
        Which claim was checked (paper numbering).
    holds:
        Whether the measured quantity respected the claimed one.
    measured / claimed:
        The two sides of the inequality (or a distance and its tolerance).
    details:
        Check-specific extras.
    """

    name: str
    holds: bool
    measured: float
    claimed: float
    details: dict = field(default_factory=dict)

    def __str__(self) -> str:
        verdict = "HOLDS" if self.holds else "VIOLATED"
        return (
            f"{self.name}: {verdict} (measured {self.measured:.6g}, "
            f"claimed {self.claimed:.6g})"
        )


def check_gibbs_privacy(
    grid: PredictorGrid,
    temperature: float,
    universe: Sequence,
    n: int,
    *,
    prior: DiscreteDistribution | None = None,
) -> TheoremReport:
    """Theorem 4.1: the Gibbs posterior is ``2·λ·Δ(R̂)``-DP.

    Enumerates every neighbouring pair of size-``n`` samples over
    ``universe`` and computes the exact worst-case privacy loss of the
    Gibbs output law; compares to the claimed ``2·λ·loss_range/n``.
    """
    gibbs = GibbsPosterior(grid, temperature, prior=prior)
    auditor = ExactPrivacyAuditor(gibbs.posterior)
    claimed = gibbs.privacy_epsilon(n)
    report = auditor.audit(universe, n, claimed_epsilon=claimed)
    return TheoremReport(
        name="Theorem 4.1 (Gibbs estimator privacy)",
        holds=bool(report.satisfied),
        measured=report.measured_epsilon,
        claimed=claimed,
        details={
            "pairs_checked": report.pairs_checked,
            "worst_pair": report.worst_pair,
            "temperature": temperature,
            "n": n,
        },
    )


def check_exponential_mechanism_privacy(
    mechanism: ExponentialMechanism, universe: Sequence, n: int
) -> TheoremReport:
    """Theorem 2.5: the exponential mechanism meets its declared ε.

    (ε for the calibrated parametrization, 2εΔq for the paper's raw one —
    either way the declared :attr:`Mechanism.epsilon` is what is audited.)
    """
    auditor = ExactPrivacyAuditor(mechanism.output_distribution)
    report = auditor.audit(universe, n, claimed_epsilon=mechanism.epsilon)
    return TheoremReport(
        name="Theorem 2.5 (exponential mechanism privacy)",
        holds=bool(report.satisfied),
        measured=report.measured_epsilon,
        claimed=mechanism.epsilon,
        details={"pairs_checked": report.pairs_checked},
    )


def check_gibbs_bound_optimality(
    prior: DiscreteDistribution,
    empirical_risks,
    temperature: float,
    *,
    n_competitors: int = 200,
    random_state=None,
    tolerance: float = 1e-9,
) -> TheoremReport:
    """Lemma 3.2: the Gibbs posterior minimizes ``λ·E R̂ + KL``.

    Compares the closed-form optimum against (a) ``n_competitors`` random
    posteriors, (b) the prior itself and every point mass, and (c) the
    closed-form free-energy value ``-log E_π e^{-λR̂}``. ``holds`` means no
    competitor beat the Gibbs posterior and the free-energy identity
    matched.
    """
    risks = np.asarray(empirical_risks, dtype=float)
    temperature = check_positive(temperature, name="temperature")
    rng = check_random_state(random_state)

    gibbs = gibbs_minimizer(prior, risks, temperature)
    gibbs_value = catoni_objective(gibbs, prior, risks, temperature)
    closed_form = optimal_objective_value(prior, risks, temperature)

    best_competitor = np.inf
    size = len(prior)
    competitors: list[DiscreteDistribution] = [prior]
    for i in range(size):
        probs = np.zeros(size)
        probs[i] = 1.0
        competitors.append(DiscreteDistribution(prior.support, probs))
    for _ in range(n_competitors):
        probs = rng.dirichlet(np.ones(size))
        competitors.append(DiscreteDistribution(prior.support, probs))
    for competitor in competitors:
        value = catoni_objective(competitor, prior, risks, temperature)
        best_competitor = min(best_competitor, value)

    identity_gap = abs(gibbs_value - closed_form)
    holds = (gibbs_value <= best_competitor + tolerance) and (
        identity_gap <= 1e-7 * max(1.0, abs(closed_form))
    )
    return TheoremReport(
        name="Lemma 3.2 (Gibbs posterior minimizes the PAC-Bayes objective)",
        holds=holds,
        measured=gibbs_value,
        claimed=best_competitor,
        details={
            "free_energy_value": closed_form,
            "identity_gap": identity_gap,
            "competitors": len(competitors),
        },
    )


def check_tradeoff_fixed_point(
    source,
    risk_matrix,
    epsilon: float,
    *,
    tolerance: float = 1e-6,
    n_competitors: int = 50,
    random_state=None,
) -> TheoremReport:
    """Theorem 4.2: the MI-regularized optimum is the Gibbs channel.

    Runs the alternating minimization, then verifies (a) the optimal
    channel's rows equal the Gibbs tilt of the optimal prior within
    ``tolerance`` (total variation), and (b) no random channel achieves a
    lower objective.
    """
    result = minimize_tradeoff(np.asarray(source, dtype=float), risk_matrix, epsilon)
    risks = np.asarray(risk_matrix, dtype=float)
    rng = check_random_state(random_state)

    best_competitor = np.inf
    n_rows, n_cols = risks.shape
    for _ in range(n_competitors):
        random_channel = rng.dirichlet(np.ones(n_cols), size=n_rows)
        value = tradeoff_objective(random_channel, source, risks, epsilon)
        best_competitor = min(best_competitor, value)
    # Also try the "ERM channel" (deterministically pick the best θ).
    erm_channel = np.zeros((n_rows, n_cols))
    erm_channel[np.arange(n_rows), risks.argmin(axis=1)] = 1.0
    best_competitor = min(
        best_competitor, tradeoff_objective(erm_channel, source, risks, epsilon)
    )

    holds = (
        result.gibbs_deviation <= tolerance
        and result.objective <= best_competitor + 1e-9
        and result.converged
    )
    return TheoremReport(
        name="Theorem 4.2 (MI-regularized optimum is the Gibbs channel)",
        holds=holds,
        measured=result.objective,
        claimed=best_competitor,
        details={
            "gibbs_deviation": result.gibbs_deviation,
            "mutual_information": result.mutual_information,
            "expected_empirical_risk": result.expected_empirical_risk,
            "iterations": result.iterations,
        },
    )


def gibbs_oracle_bound(
    prior: DiscreteDistribution,
    true_risks,
    temperature: float,
    n: int,
    *,
    loss_range: float = 1.0,
) -> float:
    """Zhang-style oracle bound on the *expected true risk* of the Gibbs
    estimator (the paper's reference 12, in-expectation form):

        ``E_Ẑ E_{θ~π̂_λ} R(θ)  ≤  min_ρ { E_ρ R + KL(ρ‖π)/λ }
                                   + λ·loss_range² / (8n)``.

    The first term has the closed form ``-(1/λ)·log E_π e^{-λR}`` (the
    free energy of the *true* risks); the second is the Hoeffding price
    of estimating R by R̂ from n samples.
    """
    risks = np.asarray(true_risks, dtype=float)
    temperature = check_positive(temperature, name="temperature")
    if n < 1:
        raise ValidationError("n must be >= 1")
    loss_range = check_positive(loss_range, name="loss_range")
    from repro.utils.numerics import logsumexp

    oracle_term = (
        -logsumexp(prior.log_probabilities - temperature * risks) / temperature
    )
    estimation_term = temperature * loss_range**2 / (8.0 * n)
    return float(oracle_term + estimation_term)


def check_gibbs_oracle_inequality(
    grid: PredictorGrid,
    data_law,
    n: int,
    temperature: float,
    true_risk,
    *,
    prior: DiscreteDistribution | None = None,
) -> TheoremReport:
    """Zhang's oracle inequality, checked exactly on a finite universe.

    Computes ``E_Ẑ E_{θ~π̂_λ} R(θ)`` by exact enumeration through the
    learning channel and compares it to :func:`gibbs_oracle_bound`.

    Parameters
    ----------
    data_law:
        :class:`DiscreteDistribution` of one observation Z.
    true_risk:
        ``true_risk(theta) -> float`` in the same units as the grid loss.
    """
    from repro.core.channel import LearningChannel
    from repro.core.gibbs import GibbsPosterior

    gibbs = GibbsPosterior(grid, temperature, prior=prior)
    channel = LearningChannel(data_law, n, gibbs.posterior)
    measured = channel.expected_risk(lambda sample, theta: true_risk(theta))

    risks = np.asarray([float(true_risk(t)) for t in grid.thetas])
    claimed = gibbs_oracle_bound(
        gibbs.prior, risks, temperature, n, loss_range=grid.loss_range
    )
    return TheoremReport(
        name="Zhang oracle inequality (paper ref 12, in expectation)",
        holds=measured <= claimed + 1e-12,
        measured=float(measured),
        claimed=claimed,
        details={
            "oracle_risk": float(risks.min()),
            "temperature": temperature,
            "n": n,
        },
    )


def check_gibbs_channel_consistency(
    prior_probs, risk_matrix, temperature: float
) -> TheoremReport:
    """Cross-check: the exponential-mechanism law (per dataset) equals the
    Gibbs-kernel row (per dataset) — the paper's central identification of
    the two objects, verified numerically row by row."""
    risks = np.asarray(risk_matrix, dtype=float)
    kernel = gibbs_channel_matrix(prior_probs, risks, temperature)

    prior = DiscreteDistribution(list(range(risks.shape[1])), prior_probs)
    worst = 0.0
    for i in range(risks.shape[0]):
        mechanism_law = prior.tilt(-temperature * risks[i])
        worst = max(
            worst, float(np.abs(mechanism_law.probabilities - kernel[i]).max())
        )
    holds = worst <= 1e-12
    return TheoremReport(
        name="Exponential mechanism ≡ Gibbs kernel (Section 3 identification)",
        holds=holds,
        measured=worst,
        claimed=1e-12,
    )
