"""Model selection with PAC-Bayes certificates — private and non-private.

Two practical questions the paper's machinery answers:

* **Which temperature λ?** Non-privately: evaluate the bound on a grid of
  λ values with a union-bounded confidence (δ/k each) and take the
  minimizer — the certificate stays valid because each candidate bound
  held simultaneously. Privately: select λ with the exponential mechanism
  whose quality is the (negated) Gibbs free energy, which has the same
  ``loss_range/n`` sensitivity as the empirical risk.
* **Total privacy accounting**: a private selection (ε₁) followed by a
  Gibbs release at the selected temperature (ε₂) is (ε₁+ε₂)-DP by basic
  composition; :func:`private_gibbs_with_selection` packages the pipeline.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from repro.core.gibbs import GibbsPosterior, privacy_of_temperature
from repro.core.pac_bayes import catoni_bound, gibbs_minimizer
from repro.distributions.discrete import DiscreteDistribution
from repro.exceptions import ValidationError
from repro.information.divergences import kl_divergence
from repro.learning.erm import PredictorGrid
from repro.mechanisms.base import PrivacySpec
from repro.mechanisms.exponential import ExponentialMechanism
from repro.utils.validation import check_in_range, check_random_state


@dataclass
class TemperatureSelection:
    """Outcome of a temperature-selection procedure."""

    temperature: float
    bound_value: float
    per_candidate: dict
    delta: float
    private: bool
    privacy: PrivacySpec | None = None


def select_temperature_by_bound(
    grid: PredictorGrid,
    sample: Sequence,
    temperatures: Sequence[float],
    *,
    prior: DiscreteDistribution | None = None,
    delta: float = 0.05,
) -> TemperatureSelection:
    """Non-private λ selection: minimize the Catoni bound over a grid.

    Each candidate bound is evaluated at confidence ``delta / k`` so the
    union of all k bounds holds with probability ≥ 1-δ, making the
    *selected* certificate valid despite the data-dependent choice.
    """
    temperatures = [float(t) for t in temperatures]
    if not temperatures:
        raise ValidationError("temperatures must not be empty")
    delta = check_in_range(delta, name="delta", low=0.0, high=1.0, inclusive=False)
    if prior is None:
        prior = DiscreteDistribution.uniform(grid.thetas)
    sample = list(sample)
    n = len(sample)
    risks = grid.empirical_risks(sample)
    per_candidate_delta = delta / len(temperatures)

    per_candidate = {}
    for lam in temperatures:
        posterior = gibbs_minimizer(prior, risks, lam)
        emp = float(risks @ posterior.probabilities)
        kl = kl_divergence(posterior, prior)
        per_candidate[lam] = catoni_bound(emp, kl, n, lam, per_candidate_delta)

    best = min(per_candidate, key=per_candidate.get)
    return TemperatureSelection(
        temperature=best,
        bound_value=per_candidate[best],
        per_candidate=per_candidate,
        delta=delta,
        private=False,
    )


def select_temperature_private(
    grid: PredictorGrid,
    sample: Sequence,
    temperatures: Sequence[float],
    epsilon: float,
    *,
    prior: DiscreteDistribution | None = None,
    random_state=None,
) -> TemperatureSelection:
    """ε-DP λ selection via the exponential mechanism.

    Quality of candidate λ on the sample is the negated free energy
    ``(1/λ)·log E_π e^{-λ·R̂}``. The free energy is a soft-min of the
    per-θ empirical risks, each of sensitivity ``loss_range/n``, so the
    quality has the same sensitivity — the exponential mechanism applies
    with Δq = loss_range/n.
    """
    temperatures = [float(t) for t in temperatures]
    if not temperatures:
        raise ValidationError("temperatures must not be empty")
    if prior is None:
        prior = DiscreteDistribution.uniform(grid.thetas)
    sample = list(sample)
    n = len(sample)
    rng = check_random_state(random_state)

    def quality(dataset, lam):
        gibbs = GibbsPosterior(grid, lam, prior=prior)
        return -gibbs.free_energy(list(dataset))

    mechanism = ExponentialMechanism(
        quality,
        outputs=temperatures,
        sensitivity=grid.risk_sensitivity(n),
        epsilon=epsilon,
    )
    selected = mechanism.release(sample, random_state=rng)
    scores = {
        lam: -float(quality(sample, lam)) for lam in temperatures
    }
    return TemperatureSelection(
        temperature=float(selected),
        bound_value=scores[float(selected)],
        per_candidate=scores,
        delta=float("nan"),
        private=True,
        privacy=mechanism.privacy,
    )


@dataclass
class PrivateSelectionRelease:
    """A privately-selected temperature plus a Gibbs release at it."""

    temperature: float
    theta: object
    privacy: PrivacySpec
    selection: TemperatureSelection


def private_gibbs_with_selection(
    grid: PredictorGrid,
    sample: Sequence,
    temperatures: Sequence[float],
    *,
    selection_epsilon: float,
    release_epsilon_budget: float,
    prior: DiscreteDistribution | None = None,
    random_state=None,
) -> PrivateSelectionRelease:
    """Select λ privately, then release θ from the Gibbs posterior at λ.

    The release's privacy cost is ``2·λ·Δ(R̂)`` (Theorem 4.1); candidates
    whose cost would exceed ``release_epsilon_budget`` are excluded up
    front (a data-independent restriction, so it costs no privacy). Total
    guarantee: ``selection_epsilon + release cost of the selected λ``,
    reported conservatively as ``selection_epsilon +
    release_epsilon_budget``.
    """
    sample = list(sample)
    n = len(sample)
    rng = check_random_state(random_state)
    affordable = [
        lam
        for lam in temperatures
        if privacy_of_temperature(float(lam), grid.loss_range, n)
        <= release_epsilon_budget + 1e-12
    ]
    if not affordable:
        raise ValidationError(
            "no candidate temperature fits the release budget; "
            f"the largest affordable λ is "
            f"{release_epsilon_budget * n / (2 * grid.loss_range):.4g}"
        )
    selection = select_temperature_private(
        grid,
        sample,
        affordable,
        selection_epsilon,
        prior=prior,
        random_state=rng,
    )
    gibbs = GibbsPosterior(grid, selection.temperature, prior=prior)
    theta = gibbs.posterior(sample).sample(random_state=rng)
    total = PrivacySpec(epsilon=selection_epsilon + release_epsilon_budget)
    return PrivateSelectionRelease(
        temperature=selection.temperature,
        theta=theta,
        privacy=total,
        selection=selection,
    )
