"""Mutual-information generalization bounds (Xu–Raginsky 2017 lineage).

The paper's Section 4 reads `I(Ẑ; θ)` as the privacy-relevant leakage of
a learning channel. A decade later the same quantity was shown to bound
the *generalization gap* directly:

    |E[ R(θ) - R̂_Ẑ(θ) ]|  ≤  sqrt( 2·σ² · I(Ẑ; θ) / n )

for σ-subgaussian losses (σ = loss_range/2 when the loss is bounded).
This module implements that bound plus its exact empirical counterpart on
finite universes, closing the loop the paper opens: privacy (small ε) ⇒
small mutual information ⇒ small generalization gap — all three sides
measurable here.
"""

from __future__ import annotations

from collections.abc import Callable

import numpy as np

from repro.core.channel import LearningChannel
from repro.exceptions import ValidationError
from repro.utils.validation import check_positive


def mutual_information_generalization_bound(
    mutual_information: float, n: int, loss_range: float = 1.0
) -> float:
    """Xu–Raginsky bound on the expected generalization gap.

    ``sqrt( 2·(loss_range/2)² · I / n ) = loss_range · sqrt(I / (2n))``.

    Parameters
    ----------
    mutual_information:
        ``I(Ẑ; θ)`` in nats (e.g. from
        :meth:`repro.core.LearningChannel.mutual_information`).
    n:
        Sample size.
    loss_range:
        Width of the loss interval (a loss in [a, a+B] is B/2-subgaussian).
    """
    mutual_information = check_positive(
        mutual_information, name="mutual_information", strict=False
    )
    if n < 1:
        raise ValidationError("n must be >= 1")
    loss_range = check_positive(loss_range, name="loss_range")
    return loss_range * float(np.sqrt(mutual_information / (2.0 * n)))


def privacy_generalization_bound(
    epsilon: float, n: int, loss_range: float = 1.0
) -> float:
    """Chain the paper's two implications into one statement:

    ε-DP ⇒ I(Ẑ;θ) ≤ n·ε (group privacy) ⇒ expected generalization gap
    ≤ ``loss_range · sqrt(ε/2)``.

    Note the n cancels — pure DP alone gives an n-free gap bound, which is
    only nontrivial for ε < 2. (Tighter DP-specific bounds exist; this is
    the one that falls straight out of the paper's MI framing.)
    """
    epsilon = check_positive(epsilon, name="epsilon")
    if n < 1:
        raise ValidationError("n must be >= 1")
    loss_range = check_positive(loss_range, name="loss_range")
    return loss_range * float(np.sqrt(epsilon / 2.0))


def exact_generalization_gap(
    channel: LearningChannel,
    true_risk: Callable[[object], float],
    empirical_risk: Callable[[list, object], float],
) -> float:
    """Exact ``E_Ẑ E_{θ~π̂} [ R(θ) - R̂_Ẑ(θ) ]`` on a finite universe.

    Parameters
    ----------
    channel:
        The learning channel (enumerates all samples with their weights).
    true_risk:
        ``true_risk(theta)`` — the population risk R(θ).
    empirical_risk:
        ``empirical_risk(sample, theta)`` — R̂ on one sample.
    """
    gap = 0.0
    for sample, weight in channel.sample_law:
        conditional = channel.channel.conditional(sample)
        for theta, prob in conditional:
            gap += weight * prob * (
                float(true_risk(theta))
                - float(empirical_risk(list(sample), theta))
            )
    return gap


def generalization_report(
    channel: LearningChannel,
    true_risk: Callable[[object], float],
    empirical_risk: Callable[[list, object], float],
    *,
    loss_range: float = 1.0,
    epsilon: float | None = None,
) -> dict:
    """Measured gap vs the MI bound (and the ε chain bound when given).

    Returns a dict with the exact gap, the channel mutual information, the
    Xu–Raginsky bound, and (optionally) the privacy chain bound — all of
    which must dominate the measured |gap|.
    """
    gap = exact_generalization_gap(channel, true_risk, empirical_risk)
    information = channel.mutual_information()
    report = {
        "generalization_gap": gap,
        "mutual_information": information,
        "bound_xu_raginsky": mutual_information_generalization_bound(
            information, channel.n, loss_range
        ),
    }
    if epsilon is not None:
        report["bound_privacy_chain"] = privacy_generalization_bound(
            epsilon, channel.n, loss_range
        )
    return report
