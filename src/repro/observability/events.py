"""Typed privacy-ledger events: the budget flow, recorded.

The paper treats a DP learner as a channel ``P(θ|Ẑ)`` whose privacy
parameter is a *quantity* — something to measure and account for, not just
declare (Cuff & Yu frame ε directly as a mutual-information constraint).
This module defines the event vocabulary that makes the budget flow
observable: every mechanism release, every accountant charge or refusal,
and every Gibbs temperature calibration emits one typed event carrying the
(ε, δ) it spends or certifies.

Events are immutable dataclasses with a stable JSON form (``to_dict`` /
:func:`event_from_dict` round-trip), so a trace exported by one process can
be audited by another: :func:`ledger_totals` re-derives the total spend of
a run under basic composition, which must agree exactly with the
accountant's own running total (tested in the tracing-equivalence suite).
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import ClassVar

from repro.exceptions import ValidationError

__all__ = [
    "BudgetChargeEvent",
    "BudgetRefundEvent",
    "BudgetRefusalEvent",
    "CalibrationEvent",
    "LedgerEvent",
    "MechanismReleaseEvent",
    "event_from_dict",
    "ledger_totals",
]


@dataclass(frozen=True)
class LedgerEvent:
    """Base class for privacy-ledger events.

    Parameters
    ----------
    label:
        Human-readable origin of the event (mechanism class name,
        accountant charge label, calibration site).
    epsilon:
        The ε this event spends, charges, or certifies.
    delta:
        The δ companion of ``epsilon`` (0.0 for pure ε-DP events).
    """

    #: Stable discriminator used in the JSON form (overridden per subclass).
    kind: ClassVar[str] = "event"

    label: str
    epsilon: float
    delta: float = 0.0

    def to_dict(self) -> dict:
        """The event as a JSON-serializable dict (``kind`` included)."""
        payload = {"kind": self.kind}
        for spec in fields(self):
            payload[spec.name] = getattr(self, spec.name)
        return payload


@dataclass(frozen=True)
class MechanismReleaseEvent(LedgerEvent):
    """One or more ``Mechanism`` releases and the guarantee each consumed.

    A single ``release`` call records one event with ``count == 1``; a
    batched ``release_many(dataset, n)`` call records *one* event with
    ``count == n`` instead of ``n`` events, so traces stay small while
    :func:`ledger_totals` still composes the same total spend.

    Parameters
    ----------
    mechanism:
        Class name of the mechanism that produced the output.
    count:
        Number of releases this event aggregates (≥ 1).
    """

    kind: ClassVar[str] = "release"

    mechanism: str = ""
    count: int = 1


@dataclass(frozen=True)
class BudgetChargeEvent(LedgerEvent):
    """A :class:`~repro.mechanisms.PrivacyAccountant` expenditure.

    Parameters
    ----------
    remaining_epsilon:
        Unspent ε *after* this charge was recorded.
    remaining_delta:
        Unspent δ after this charge was recorded.
    """

    kind: ClassVar[str] = "charge"

    remaining_epsilon: float = 0.0
    remaining_delta: float = 0.0


@dataclass(frozen=True)
class BudgetRefundEvent(LedgerEvent):
    """A previously-recorded charge handed back to the accountant.

    Refunds model *reservations that were rolled back* — a serving layer
    reserves budget before executing a batch and refunds it when the batch
    fails or times out before anything was released. A refund never makes
    the ledger under-count an actual release: callers may only refund a
    charge whose release provably did not happen.

    In :func:`ledger_totals`, refund events *subtract* their (ε, δ) when
    the ``"refund"`` kind is included, so
    ``ledger_totals(events, kinds=("charge", "refund"))`` reproduces the
    accountant's net spend exactly.

    Parameters
    ----------
    remaining_epsilon:
        Unspent ε *after* this refund was applied.
    remaining_delta:
        Unspent δ after this refund was applied.
    """

    kind: ClassVar[str] = "refund"

    remaining_epsilon: float = 0.0
    remaining_delta: float = 0.0


@dataclass(frozen=True)
class BudgetRefusalEvent(LedgerEvent):
    """A charge the accountant refused: the budget would have been exceeded.

    Parameters
    ----------
    remaining_epsilon:
        Unspent ε at the moment of refusal (unchanged by the refusal).
    remaining_delta:
        Unspent δ at the moment of refusal.
    """

    kind: ClassVar[str] = "refusal"

    remaining_epsilon: float = 0.0
    remaining_delta: float = 0.0


@dataclass(frozen=True)
class CalibrationEvent(LedgerEvent):
    """A Gibbs temperature ↔ privacy calibration (Theorem 4.1).

    Parameters
    ----------
    temperature:
        The inverse temperature λ on the Gibbs side of the calibration.
    loss_range:
        Width of the bounded-loss interval entering ``Δ(R̂) = B/n``.
    n:
        Sample size the guarantee was calibrated for.
    """

    kind: ClassVar[str] = "calibration"

    temperature: float = 0.0
    loss_range: float = 0.0
    n: int = 0


#: kind discriminator -> event class, for deserialization.
EVENT_KINDS: dict[str, type[LedgerEvent]] = {
    cls.kind: cls
    for cls in (
        MechanismReleaseEvent,
        BudgetChargeEvent,
        BudgetRefundEvent,
        BudgetRefusalEvent,
        CalibrationEvent,
        LedgerEvent,
    )
}


def event_from_dict(payload: dict) -> LedgerEvent:
    """Rebuild a ledger event from its :meth:`LedgerEvent.to_dict` form.

    Parameters
    ----------
    payload:
        Dict with a ``kind`` discriminator plus that kind's fields.
    """
    if not isinstance(payload, dict):
        raise ValidationError("ledger event payload must be a dict")
    kind = payload.get("kind")
    cls = EVENT_KINDS.get(kind)
    if cls is None:
        known = ", ".join(sorted(EVENT_KINDS))
        raise ValidationError(f"unknown ledger event kind {kind!r}; known: {known}")
    names = {spec.name for spec in fields(cls)}
    extra = sorted(set(payload) - names - {"kind"})
    if extra:
        raise ValidationError(f"ledger event has unknown fields: {extra}")
    try:
        return cls(**{k: v for k, v in payload.items() if k != "kind"})
    except TypeError as error:
        raise ValidationError(f"malformed ledger event {payload!r}: {error}") from error


def ledger_totals(
    events, kinds: tuple[str, ...] = ("charge",)
) -> tuple[float, float]:
    """Total (ε, δ) of selected events under basic composition.

    Parameters
    ----------
    events:
        Iterable of :class:`LedgerEvent` (or their dict forms).
    kinds:
        Event kinds to include; defaults to accountant charges only, so
        the total reproduces exactly what the accountant recorded. Add
        ``"refund"`` to net out rolled-back reservations (refund events
        contribute negatively).
    """
    epsilon_total = 0.0
    delta_total = 0.0
    for event in events:
        if isinstance(event, dict):
            event = event_from_dict(event)
        if event.kind in kinds:
            count = getattr(event, "count", 1)
            # Refunds hand budget back: they enter the composition with a
            # negative sign, so ("charge", "refund") reproduces the
            # accountant's *net* spend after rolled-back reservations.
            sign = -1.0 if event.kind == "refund" else 1.0
            epsilon_total += sign * count * event.epsilon
            delta_total += sign * count * event.delta
    return (epsilon_total, delta_total)
