"""Observability: spans, metrics, and the privacy-ledger event stream.

The paper's stance — a DP learner is an information channel whose ε is a
measured quantity — implies the budget flow should be *observable*, not
just declared. This package is the cross-cutting layer that records it:

* **Spans** (:class:`Tracer.span <repro.observability.tracer.Tracer.span>`):
  nested, monotonic-clock-timed regions with a wall-clock anchor;
* **Metrics**: lazily-created counters and histogram summaries
  (mechanism releases, audit trials, cache hits, solver iterations);
* **Privacy ledger**: typed events for every ``Mechanism.release``
  (emitted by a base-class hook covering all mechanism families), every
  ``PrivacyAccountant`` charge or refusal, and every Gibbs temperature
  calibration — each carrying its (ε, δ) so :func:`ledger_totals`
  reconstructs the basic-composition spend of a run exactly.

Tracing is disabled by default and the disabled hooks are near-free; turn
it on with the :func:`tracing` context manager, or from the CLI via
``repro bench/audit --trace/--trace-json`` and inspect results with
``repro trace``. Schema and overhead notes: ``docs/OBSERVABILITY.md``.
"""

from repro.observability.events import (
    BudgetChargeEvent,
    BudgetRefundEvent,
    BudgetRefusalEvent,
    CalibrationEvent,
    LedgerEvent,
    MechanismReleaseEvent,
    event_from_dict,
    ledger_totals,
)
from repro.observability.export import (
    load_trace,
    render_trace,
    validate_trace,
    write_trace,
)
from repro.observability.metrics import HistogramSummary, MetricSet
from repro.observability.sinks import ConsoleSink, FileSink
from repro.observability.tracer import (
    TRACE_SCHEMA_VERSION,
    SpanRecord,
    Tracer,
    activate,
    current,
    deactivate,
    tracing,
)

__all__ = [
    "BudgetChargeEvent",
    "BudgetRefundEvent",
    "BudgetRefusalEvent",
    "CalibrationEvent",
    "ConsoleSink",
    "FileSink",
    "HistogramSummary",
    "LedgerEvent",
    "MechanismReleaseEvent",
    "MetricSet",
    "SpanRecord",
    "TRACE_SCHEMA_VERSION",
    "Tracer",
    "activate",
    "current",
    "deactivate",
    "event_from_dict",
    "ledger_totals",
    "load_trace",
    "render_trace",
    "tracing",
    "validate_trace",
    "write_trace",
]
