"""Trace JSON export: schema validation, loading, writing, rendering.

The trace document (schema version 1, produced by
:meth:`~repro.observability.tracer.Tracer.to_dict`)::

    {
      "schema_version": 1,
      "name": "repro bench",
      "created_unix": 1754870000.0,
      "seconds": 1.234,
      "spans": [
        {"span_id": 1, "parent_id": null, "name": "experiment:E5",
         "attributes": {...}, "started_unix": ..., "offset_seconds": 0.0,
         "seconds": 0.81},
        ...
      ],
      "counters": {"mechanism.releases": 120, ...},
      "histograms": {"blahut_arimoto.iterations":
                     {"count": 3, "total": 91.0, "min": 17, "max": 44}},
      "ledger": [
        {"kind": "charge", "label": "LaplaceMechanism", "epsilon": 0.5,
         "delta": 0.0, "remaining_epsilon": 0.5, "remaining_delta": 0.0},
        ...
      ]
    }

:func:`validate_trace` checks a payload against this shape (every ledger
entry must round-trip through the typed event classes);
:func:`render_trace` pretty-prints the span tree, the metrics, and the
basic-composition ledger totals for consoles.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.exceptions import ValidationError
from repro.observability.events import event_from_dict, ledger_totals
from repro.observability.tracer import TRACE_SCHEMA_VERSION, Tracer

__all__ = [
    "load_trace",
    "render_trace",
    "validate_trace",
    "write_trace",
]

_REQUIRED_KEYS = (
    "schema_version",
    "name",
    "created_unix",
    "seconds",
    "spans",
    "counters",
    "histograms",
    "ledger",
)

_SPAN_KEYS = frozenset(
    (
        "span_id",
        "parent_id",
        "name",
        "attributes",
        "started_unix",
        "offset_seconds",
        "seconds",
    )
)


def validate_trace(payload: dict) -> dict:
    """Validate a trace document; returns it unchanged when well-formed.

    Parameters
    ----------
    payload:
        A schema-version-1 trace document (see the module docstring).
    """
    if not isinstance(payload, dict):
        raise ValidationError("trace payload must be a dict")
    version = payload.get("schema_version")
    if version != TRACE_SCHEMA_VERSION:
        raise ValidationError(
            f"unsupported trace schema version {version!r}; "
            f"this build reads version {TRACE_SCHEMA_VERSION}"
        )
    missing = sorted(set(_REQUIRED_KEYS) - set(payload))
    if missing:
        raise ValidationError(f"trace missing keys: {missing}")
    if not isinstance(payload["spans"], list):
        raise ValidationError("trace 'spans' must be a list")
    seen_ids = set()
    for entry in payload["spans"]:
        if not isinstance(entry, dict) or not _SPAN_KEYS <= set(entry):
            lacking = sorted(_SPAN_KEYS - set(entry or ()))
            raise ValidationError(f"span record missing keys: {lacking}")
        parent = entry["parent_id"]
        if parent is not None and parent not in seen_ids:
            raise ValidationError(
                f"span {entry['span_id']} references unknown parent {parent}"
            )
        seen_ids.add(entry["span_id"])
    for family in ("counters", "histograms"):
        if not isinstance(payload[family], dict):
            raise ValidationError(f"trace {family!r} must be a dict")
    if not isinstance(payload["ledger"], list):
        raise ValidationError("trace 'ledger' must be a list")
    for entry in payload["ledger"]:
        event_from_dict(entry)  # raises ValidationError on malformed events
    return payload


def _payload_of(trace) -> dict:
    """Normalize a :class:`Tracer` or payload dict to a validated payload."""
    if isinstance(trace, Tracer):
        return trace.to_dict()
    return validate_trace(trace)


def write_trace(trace, path) -> Path:
    """Serialize a tracer (or payload) to ``path`` as indented JSON.

    Parameters
    ----------
    trace:
        A :class:`Tracer` or an already-exported trace document.
    path:
        Destination file; parent directories are created.
    """
    payload = _payload_of(trace)
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    return path


def load_trace(path) -> dict:
    """Read and validate a trace JSON file.

    Parameters
    ----------
    path:
        Path to a document written by :func:`write_trace`.
    """
    try:
        payload = json.loads(Path(path).read_text(encoding="utf-8"))
    except OSError as error:
        raise ValidationError(f"cannot read trace {path}: {error}") from error
    except json.JSONDecodeError as error:
        raise ValidationError(f"trace {path} is not valid JSON: {error}") from error
    return validate_trace(payload)


def render_trace(trace) -> str:
    """Human-readable rendering: span tree, metrics, ledger totals.

    Parameters
    ----------
    trace:
        A :class:`Tracer` or trace document.
    """
    payload = _payload_of(trace)
    lines = [
        f"trace {payload['name']!r} — {payload['seconds']:.3f}s, "
        f"{len(payload['spans'])} spans, {len(payload['ledger'])} ledger events"
    ]

    children: dict[int | None, list[dict]] = {}
    for entry in payload["spans"]:
        children.setdefault(entry["parent_id"], []).append(entry)

    def walk(parent_id, depth):
        for entry in children.get(parent_id, ()):
            seconds = entry["seconds"]
            timing = f"{seconds * 1e3:.3f} ms" if seconds is not None else "open"
            lines.append(f"{'  ' * depth}• {entry['name']}  [{timing}]")
            walk(entry["span_id"], depth + 1)

    walk(None, 1)

    if payload["counters"]:
        lines.append("counters:")
        for name in sorted(payload["counters"]):
            lines.append(f"  {name} = {payload['counters'][name]:g}")
    if payload["histograms"]:
        lines.append("histograms:")
        for name in sorted(payload["histograms"]):
            h = payload["histograms"][name]
            lines.append(
                f"  {name}: n={h['count']} total={h['total']:g} "
                f"min={h['min']} max={h['max']}"
            )

    kinds: dict[str, int] = {}
    for entry in payload["ledger"]:
        kinds[entry["kind"]] = kinds.get(entry["kind"], 0) + 1
    if kinds:
        summary = ", ".join(f"{kinds[k]} {k}" for k in sorted(kinds))
        spent_epsilon, spent_delta = ledger_totals(payload["ledger"])
        lines.append(f"ledger: {summary}")
        lines.append(
            "ledger charges compose (basic) to "
            f"ε={spent_epsilon:.6g}, δ={spent_delta:.3g}"
        )
    return "\n".join(lines)
