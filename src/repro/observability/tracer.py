"""The tracer: nested spans, metrics, and the privacy-ledger stream.

One :class:`Tracer` collects everything a run emits — a tree of timed
spans (wall-clock anchor + monotonic durations), lazily-created counters
and histograms, and the typed ledger events of :mod:`.events` — and
serializes it all as one schema-versioned JSON document.

Tracing is **off by default** and the disabled path is engineered to be
near-free: instrumented hot paths (``Mechanism.release``, the accountant,
the bench runner) read one module-level binding via :func:`current` and
bail on ``None`` before touching anything else. A tier-1 smoke test pins
the disabled-hook overhead below 5% of a micro-benchmarked release loop.

The active tracer is module-global (not thread- or process-local): one
tracer per process, activated via the :func:`tracing` context manager or
:func:`activate`/:func:`deactivate`. Worker subprocesses of the pooled
bench backend therefore do not report into the parent's tracer — the bench
engine records this honestly by omitting per-configuration trace summaries
for pooled runs (see ``docs/OBSERVABILITY.md``).
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field

from repro.exceptions import ValidationError
from repro.observability.events import LedgerEvent
from repro.observability.metrics import MetricSet

__all__ = [
    "SpanRecord",
    "Tracer",
    "activate",
    "current",
    "deactivate",
    "record",
    "span",
    "tracing",
]

#: Trace JSON document version (see docs/OBSERVABILITY.md for the schema).
TRACE_SCHEMA_VERSION = 1


@dataclass
class SpanRecord:
    """One timed, possibly-nested region of work.

    Attributes
    ----------
    span_id / parent_id:
        Position in the span tree (ids are 1-based, in start order;
        ``parent_id`` is ``None`` for roots).
    name:
        Span label (``"release:LaplaceMechanism"``).
    attributes:
        Small JSON-serializable annotations attached at start.
    started_unix:
        Wall-clock start (``time.time``), for cross-process alignment.
    offset_seconds:
        Monotonic start offset from the tracer's creation.
    seconds:
        Monotonic duration; ``None`` while the span is still open.
    """

    span_id: int
    parent_id: int | None
    name: str
    attributes: dict = field(default_factory=dict)
    started_unix: float = 0.0
    offset_seconds: float = 0.0
    seconds: float | None = None

    def to_dict(self) -> dict:
        """The span as a JSON-serializable dict."""
        return {
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "attributes": dict(self.attributes),
            "started_unix": self.started_unix,
            "offset_seconds": self.offset_seconds,
            "seconds": self.seconds,
        }


class Tracer:
    """Collector for spans, metrics, and privacy-ledger events.

    Parameters
    ----------
    name:
        Label stored on the exported trace (e.g. ``"repro bench"``).
    """

    def __init__(self, name: str = "trace") -> None:
        self.name = str(name)
        self.created_unix = time.time()
        self._t0 = time.perf_counter()
        self.spans: list[SpanRecord] = []
        self.events: list[LedgerEvent] = []
        self.metrics = MetricSet()
        self._stack: list[SpanRecord] = []

    # -- spans ----------------------------------------------------------

    @contextmanager
    def span(self, name: str, **attributes):
        """Open a nested span; closes (and times) it on exit.

        Parameters
        ----------
        name:
            Span label.
        **attributes:
            JSON-serializable annotations stored on the record.
        """
        record = SpanRecord(
            span_id=len(self.spans) + 1,
            parent_id=self._stack[-1].span_id if self._stack else None,
            name=str(name),
            attributes=attributes,
            started_unix=time.time(),
            offset_seconds=time.perf_counter() - self._t0,
        )
        self.spans.append(record)
        self._stack.append(record)
        started = time.perf_counter()
        try:
            yield record
        finally:
            record.seconds = time.perf_counter() - started
            self._stack.pop()

    @property
    def active_span(self) -> SpanRecord | None:
        """The innermost open span, if any."""
        return self._stack[-1] if self._stack else None

    # -- ledger + metrics ----------------------------------------------

    def record(self, event: LedgerEvent) -> None:
        """Append one typed event to the privacy ledger."""
        if not isinstance(event, LedgerEvent):
            raise ValidationError("record() takes a LedgerEvent")
        self.events.append(event)

    def count(self, name: str, value: float = 1) -> None:
        """Increment the counter ``name`` by ``value``.

        Parameters
        ----------
        name:
            Counter name.
        value:
            Increment (default 1).
        """
        self.metrics.count(name, value)

    def observe(self, name: str, value: float) -> None:
        """Record one histogram observation.

        Parameters
        ----------
        name:
            Histogram name.
        value:
            Observed value.
        """
        self.metrics.observe(name, value)

    # -- export ---------------------------------------------------------

    @property
    def seconds(self) -> float:
        """Monotonic seconds since the tracer was created."""
        return time.perf_counter() - self._t0

    def to_dict(self) -> dict:
        """The full trace as its schema-versioned JSON document."""
        metrics = self.metrics.to_dict()
        return {
            "schema_version": TRACE_SCHEMA_VERSION,
            "name": self.name,
            "created_unix": self.created_unix,
            "seconds": self.seconds,
            "spans": [record.to_dict() for record in self.spans],
            "counters": metrics["counters"],
            "histograms": metrics["histograms"],
            "ledger": [event.to_dict() for event in self.events],
        }

    def __repr__(self) -> str:
        return (
            f"Tracer({self.name!r}, spans={len(self.spans)}, "
            f"events={len(self.events)})"
        )


# -- module-global activation ------------------------------------------

#: The process-wide active tracer; ``None`` means tracing is disabled and
#: every instrumentation hook is a near-free no-op.
_ACTIVE: Tracer | None = None


def current() -> Tracer | None:
    """The active tracer, or ``None`` when tracing is disabled."""
    return _ACTIVE


def activate(tracer: Tracer) -> Tracer | None:
    """Install ``tracer`` as the active tracer; returns the previous one."""
    global _ACTIVE
    if not isinstance(tracer, Tracer):
        raise ValidationError("activate() takes a Tracer")
    previous = _ACTIVE
    _ACTIVE = tracer
    return previous


def deactivate() -> Tracer | None:
    """Disable tracing; returns the tracer that was active, if any."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = None
    return previous


@contextmanager
def tracing(tracer: Tracer | None = None):
    """Context manager: activate a tracer, restore the previous on exit.

    Parameters
    ----------
    tracer:
        The tracer to activate; a fresh one is created when omitted.
    """
    tracer = tracer if tracer is not None else Tracer()
    previous = activate(tracer)
    try:
        yield tracer
    finally:
        global _ACTIVE
        _ACTIVE = previous


# -- no-op-safe helpers for instrumentation sites ----------------------


@contextmanager
def span(name: str, **attributes):
    """A span on the active tracer, or a no-op when tracing is disabled.

    Parameters
    ----------
    name:
        Span label.
    **attributes:
        Annotations forwarded to :meth:`Tracer.span`.
    """
    tracer = _ACTIVE
    if tracer is None:
        yield None
    else:
        with tracer.span(name, **attributes) as opened:
            yield opened


def record(event: LedgerEvent) -> None:
    """Record a ledger event on the active tracer (no-op when disabled)."""
    tracer = _ACTIVE
    if tracer is not None:
        tracer.record(event)
