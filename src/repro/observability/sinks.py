"""Trace sinks: where a finished trace goes.

Two built-in destinations — a console sink rendering the human-readable
summary and a file sink writing the schema-versioned JSON document. The
CLI's ``--trace`` and ``--trace-json`` flags are thin wrappers over these,
and library callers can pass any object with the same one-method ``emit``
protocol.
"""

from __future__ import annotations

import sys
from pathlib import Path

from repro.observability.export import render_trace, write_trace

__all__ = ["ConsoleSink", "FileSink"]


class ConsoleSink:
    """Render a trace summary to a text stream (stderr by default).

    Parameters
    ----------
    stream:
        Writable text stream; defaults to ``sys.stderr`` so trace output
        never corrupts machine-readable stdout (JSON reports, tables).
    """

    def __init__(self, stream=None) -> None:
        self.stream = stream

    def emit(self, trace) -> None:
        """Write the rendered trace followed by a newline."""
        stream = self.stream if self.stream is not None else sys.stderr
        stream.write(render_trace(trace) + "\n")


class FileSink:
    """Write the trace JSON document to a file.

    Parameters
    ----------
    path:
        Destination path (parents created on demand).
    """

    def __init__(self, path) -> None:
        self.path = Path(path)

    def emit(self, trace) -> Path:
        """Serialize the trace to :attr:`path`; returns the path."""
        return write_trace(trace, self.path)
