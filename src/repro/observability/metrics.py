"""Counters and histogram summaries for the tracing subsystem.

Deliberately tiny: a counter is a number, a histogram is the streaming
summary ``(count, total, min, max)``. That is enough to answer the
operational questions the ROADMAP's serving work needs (how many releases,
how many RNG draws, how many audit trials, how many cache hits, how long a
release loop spends per iteration) without buckets, reservoirs, or any
per-observation allocation on the hot path.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.exceptions import ValidationError

__all__ = ["HistogramSummary", "MetricSet"]


@dataclass
class HistogramSummary:
    """Streaming summary of an observed distribution.

    Attributes
    ----------
    count / total / minimum / maximum:
        Number of observations, their sum, and the observed extremes.
    """

    count: int = 0
    total: float = 0.0
    minimum: float = math.inf
    maximum: float = -math.inf

    def observe(self, value: float) -> None:
        """Fold one observation into the summary."""
        value = float(value)
        self.count += 1
        self.total += value
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value

    @property
    def mean(self) -> float:
        """Mean of the observations (NaN when empty)."""
        return self.total / self.count if self.count else math.nan

    def to_dict(self) -> dict:
        """JSON-serializable form (empty histograms have null extremes)."""
        return {
            "count": int(self.count),
            "total": float(self.total),
            "min": self.minimum if self.count else None,
            "max": self.maximum if self.count else None,
        }


class MetricSet:
    """A named family of counters and histogram summaries.

    Counters are monotone accumulators (``count``); histograms record
    per-observation summaries (``observe``). Both are created lazily on
    first touch, so instrumentation sites never need registration.
    """

    def __init__(self) -> None:
        self.counters: dict[str, float] = {}
        self.histograms: dict[str, HistogramSummary] = {}

    def count(self, name: str, value: float = 1) -> None:
        """Add ``value`` (default 1) to the counter ``name``.

        Parameters
        ----------
        name:
            Counter name, dot-namespaced (``"mechanism.releases"``).
        value:
            Increment; must be finite.
        """
        if not math.isfinite(value):
            raise ValidationError(f"counter increment must be finite, got {value!r}")
        self.counters[name] = self.counters.get(name, 0) + value

    def observe(self, name: str, value: float) -> None:
        """Record one observation into the histogram ``name``.

        Parameters
        ----------
        name:
            Histogram name, dot-namespaced (``"release.seconds"``).
        value:
            The observed value; must be finite.
        """
        value = float(value)
        if not math.isfinite(value):
            raise ValidationError(f"observation must be finite, got {value!r}")
        histogram = self.histograms.get(name)
        if histogram is None:
            histogram = self.histograms[name] = HistogramSummary()
        histogram.observe(value)

    def counter(self, name: str) -> float:
        """Current value of a counter (0 when never incremented)."""
        return self.counters.get(name, 0)

    def to_dict(self) -> dict:
        """Both metric families as one JSON-serializable dict."""
        return {
            "counters": {name: self.counters[name] for name in sorted(self.counters)},
            "histograms": {
                name: self.histograms[name].to_dict()
                for name in sorted(self.histograms)
            },
        }
