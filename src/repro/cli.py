"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``experiments``
    List the reproduction's experiments (E1…E12) and their bench files.
``audit``
    Exact privacy audit of the Gibbs estimator on a small universe.
``tradeoff``
    Print the privacy–information–risk frontier (Theorem 4.2) for a
    Bernoulli instance.
``release``
    One differentially-private Gibbs release on freshly sampled data.
``lint``
    Run dplint, the bundled static analyzer for differential-privacy
    invariants, over the source tree.
"""

from __future__ import annotations

import argparse
import itertools
import sys

import numpy as np


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Differentially-private learning via PAC-Bayes and information "
            "theory (reproduction of Mir, PAIS/EDBT 2012)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("experiments", help="list the reproduction's experiments")

    audit = sub.add_parser(
        "audit", help="exact privacy audit of the Gibbs estimator"
    )
    audit.add_argument("--epsilon", type=float, default=1.0)
    audit.add_argument("--n", type=int, default=3)
    audit.add_argument("--grid-size", type=int, default=5)
    audit.add_argument("--p", type=float, default=0.7)

    tradeoff = sub.add_parser(
        "tradeoff", help="print the Theorem 4.2 frontier"
    )
    tradeoff.add_argument(
        "--epsilons",
        type=float,
        nargs="+",
        default=[0.1, 0.5, 1.0, 2.0, 5.0, 20.0],
    )
    tradeoff.add_argument("--n", type=int, default=2)
    tradeoff.add_argument("--grid-size", type=int, default=5)
    tradeoff.add_argument("--p", type=float, default=0.7)

    release = sub.add_parser(
        "release", help="one ε-DP Gibbs release on sampled data"
    )
    release.add_argument("--epsilon", type=float, default=1.0)
    release.add_argument("--n", type=int, default=100)
    release.add_argument("--grid-size", type=int, default=21)
    release.add_argument("--p", type=float, default=0.8)
    release.add_argument("--seed", type=int, default=0)

    lint = sub.add_parser(
        "lint", help="run the dplint static analyzer over the source tree"
    )
    lint.add_argument(
        "paths",
        nargs="*",
        help="files or directories to analyze (default: the installed "
        "repro package)",
    )
    lint.add_argument("--format", choices=("text", "json"), default="text")
    lint.add_argument("--select", action="append", default=[], metavar="RULE")
    lint.add_argument("--ignore", action="append", default=[], metavar="RULE")
    lint.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalog and exit",
    )
    return parser


def _cmd_experiments(args) -> int:
    from repro.experiments import ResultTable
    from repro.experiments.registry import EXPERIMENTS

    table = ResultTable(["id", "claim", "bench"], title="Experiments")
    for experiment in EXPERIMENTS:
        table.add_row(experiment.id, experiment.claim, experiment.bench)
    print(table)
    return 0


def _cmd_audit(args) -> int:
    from repro.core import GibbsEstimator
    from repro.learning import BernoulliTask, PredictorGrid
    from repro.privacy import ExactPrivacyAuditor

    task = BernoulliTask(p=args.p)
    grid = PredictorGrid.linspace(task.loss, 0.0, 1.0, args.grid_size)
    estimator = GibbsEstimator.from_privacy(
        grid, args.epsilon, expected_sample_size=args.n
    )
    report = ExactPrivacyAuditor(estimator.output_distribution).audit(
        [0, 1], args.n, claimed_epsilon=args.epsilon
    )
    print(report)
    return 0 if report.satisfied else 1


def _cmd_tradeoff(args) -> int:
    from repro.core import tradeoff_curve
    from repro.experiments import ResultTable
    from repro.learning import BernoulliTask, PredictorGrid, empirical_risk_matrix

    task = BernoulliTask(p=args.p)
    grid = PredictorGrid.linspace(task.loss, 0.0, 1.0, args.grid_size)
    datasets = list(itertools.product([0, 1], repeat=args.n))
    risks = empirical_risk_matrix(
        lambda t, z: abs(t - z), grid.thetas, [list(d) for d in datasets]
    )
    source = np.array(
        [
            np.prod([args.p if z else 1 - args.p for z in dataset])
            for dataset in datasets
        ]
    )
    points = tradeoff_curve(source, risks, args.epsilons)
    table = ResultTable(
        ["epsilon", "I(Z;theta) nats", "E empirical risk", "objective"],
        title=f"Theorem 4.2 frontier, Bernoulli({args.p}), n={args.n}",
    )
    for point in points:
        table.add_row(
            point.epsilon,
            point.mutual_information,
            point.expected_empirical_risk,
            point.objective,
        )
    print(table)
    return 0


def _cmd_release(args) -> int:
    from repro.core import GibbsEstimator
    from repro.learning import BernoulliTask, PredictorGrid

    task = BernoulliTask(p=args.p)
    sample = list(task.sample(args.n, random_state=args.seed))
    grid = PredictorGrid.linspace(task.loss, 0.0, 1.0, args.grid_size)
    estimator = GibbsEstimator.from_privacy(
        grid, args.epsilon, expected_sample_size=args.n
    )
    theta = estimator.release(sample, random_state=args.seed + 1)
    print(f"released theta = {theta:.4f} under {estimator.privacy}")
    print(f"true risk R(theta) = {task.true_risk(theta):.4f} "
          f"(Bayes {task.bayes_risk():.4f})")
    return 0


def _cmd_lint(args) -> int:
    from repro.analysis.__main__ import execute

    return execute(args)


_COMMANDS = {
    "experiments": _cmd_experiments,
    "audit": _cmd_audit,
    "tradeoff": _cmd_tradeoff,
    "release": _cmd_release,
    "lint": _cmd_lint,
}


def main(argv=None) -> int:
    """Entry point; returns a process exit code."""
    args = _build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
