"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``experiments``
    List the reproduction's experiments and their bench files (the range
    is derived from the registry, never hard-coded).
``bench``
    Drive the registered benchmark experiments through the parallel,
    cached engine and write machine-readable ``BENCH_<id>.json``
    manifests. ``--compare BASELINE`` additionally diffs the fresh
    timings against a committed ``perf_baseline.json`` under
    ``--tolerance`` and fails on regression; ``--write-baseline PATH``
    records a new baseline. Exit code 0 when every configuration
    succeeded (and, with ``--compare``, no experiment regressed), 1 when
    any failed after retries or exceeded the perf tolerance, 2 on usage
    errors — the same contract as ``lint``/``audit``.
``audit``
    Statistical verification of every mechanism family's claimed ε:
    Monte-Carlo audits with certified Clopper–Pearson lower bounds, plus
    an exact enumeration audit of the Gibbs estimator. Exit code 0 when
    every claim holds, 1 on a certified violation, 2 on usage errors —
    the same contract as ``lint``.
``audit-summary``
    Render a ``repro audit --format json`` report as a GitHub-flavoured
    markdown summary (the nightly CI job appends it to
    ``$GITHUB_STEP_SUMMARY``).
``tradeoff``
    Print the privacy–information–risk frontier (Theorem 4.2) for a
    Bernoulli instance.
``release``
    One differentially-private Gibbs release on freshly sampled data.
``lint``
    Run dplint, the bundled static analyzer for differential-privacy
    invariants, over the source tree.
``serve``
    Live demo of the serving front door: a small client fleet against
    the budget-enforcing, batching :class:`ReleaseService` on the real
    clock, summarized when it finishes.
``loadtest``
    The deterministic load-test harness: a seeded simulated-clock fleet,
    a schema-versioned ``LOADTEST_<id>.json`` report, and optionally a
    batched-vs-unbatched speedup comparison. Exit code 0 when the run is
    clean, 1 when any tenant over-spent or any batch failed, 2 on usage
    errors.
``trace``
    Validate and pretty-print a trace JSON document written by
    ``bench``/``audit`` ``--trace-json`` (span tree, counters, and the
    privacy-ledger composition totals). Exit code 0 on a well-formed
    trace, 2 on a missing or malformed one.

``bench`` and ``audit`` accept ``--trace`` (print a trace summary to
stderr when done) and ``--trace-json PATH`` (write the full
schema-versioned trace document); see ``docs/OBSERVABILITY.md``.
"""

from __future__ import annotations

import argparse
import itertools
import sys
from pathlib import Path

import numpy as np


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Differentially-private learning via PAC-Bayes and information "
            "theory (reproduction of Mir, PAIS/EDBT 2012)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    from repro.experiments.registry import experiment_span

    sub.add_parser(
        "experiments",
        help=f"list the reproduction's experiments ({experiment_span()})",
    )

    bench = sub.add_parser(
        "bench",
        help="run benchmark experiments through the parallel cached "
        "engine and write BENCH_<id>.json manifests",
    )
    bench.add_argument(
        "experiments",
        nargs="*",
        metavar="ID",
        help="experiment ids or globs, case-insensitive (e.g. E4 'e1?' "
        "'E*'); default: all registered experiments",
    )
    bench.add_argument(
        "--workers",
        type=int,
        default=1,
        help="process-pool size per experiment sweep (default: 1, serial)",
    )
    bench.add_argument(
        "--timeout",
        type=float,
        default=None,
        help="per-configuration wall-clock budget in seconds",
    )
    bench.add_argument(
        "--retries",
        type=int,
        default=0,
        help="retry budget per failing configuration (seeds re-derived)",
    )
    bench.add_argument(
        "--no-cache",
        action="store_true",
        help="recompute every configuration, ignoring the result cache",
    )
    bench.add_argument(
        "--cache-dir",
        default=".repro_bench_cache",
        help="result-cache directory (default: .repro_bench_cache)",
    )
    bench.add_argument(
        "--output-dir",
        default="bench_results",
        help="directory receiving BENCH_<id>.json (default: bench_results)",
    )
    bench.add_argument(
        "--format", choices=("text", "json"), default="text"
    )
    bench.add_argument(
        "--json",
        action="store_const",
        const="json",
        dest="format",
        help="shorthand for --format json",
    )
    bench.add_argument(
        "--list",
        action="store_true",
        dest="list_experiments",
        help="print the experiments the selection resolves to and exit",
    )
    bench.add_argument(
        "--compare",
        metavar="BASELINE",
        default=None,
        help="diff this run's executed seconds against a committed "
        "perf_baseline.json (forces fresh timings); exit 1 on regression",
    )
    bench.add_argument(
        "--tolerance",
        type=float,
        default=1.5,
        help="largest acceptable measured/baseline slowdown ratio for "
        "--compare (default: 1.5)",
    )
    bench.add_argument(
        "--compare-output",
        metavar="PATH",
        default=None,
        help="write the --compare report JSON here "
        "(default: <output-dir>/PERF_COMPARE.json)",
    )
    bench.add_argument(
        "--write-baseline",
        metavar="PATH",
        default=None,
        help="record this run's executed seconds as the new perf baseline "
        "(forces fresh timings)",
    )
    _add_trace_flags(bench)

    audit = sub.add_parser(
        "audit",
        help="statistical audit of every mechanism's claimed ε "
        "(plus an exact Gibbs enumeration audit)",
    )
    audit.add_argument(
        "families",
        nargs="*",
        metavar="FAMILY",
        help="mechanism families to audit (default: all; see --list)",
    )
    audit.add_argument("--epsilon", type=float, default=1.0)
    audit.add_argument("--n", type=int, default=3)
    audit.add_argument("--samples", type=int, default=12_000)
    audit.add_argument("--confidence", type=float, default=0.999)
    audit.add_argument("--seed", type=int, default=0)
    audit.add_argument("--format", choices=("text", "json"), default="text")
    audit.add_argument(
        "--noise-scale",
        type=float,
        default=1.0,
        help="deliberately rescale mechanism noise (< 1 weakens privacy) "
        "to demonstrate that the auditor catches mis-calibration",
    )
    audit.add_argument(
        "--skip-exact",
        action="store_true",
        help="skip the exact enumeration audit of the Gibbs estimator",
    )
    audit.add_argument(
        "--list",
        action="store_true",
        dest="list_families",
        help="print the audit-family registry and exit",
    )
    _add_trace_flags(audit)

    audit_summary = sub.add_parser(
        "audit-summary",
        help="render a markdown summary of a `repro audit --format json` "
        "report (CI writes it to $GITHUB_STEP_SUMMARY)",
    )
    audit_summary.add_argument(
        "path", help="path to an audit.json written by audit --format json"
    )

    trace = sub.add_parser(
        "trace",
        help="validate and pretty-print a trace JSON document written "
        "by bench/audit --trace-json",
    )
    trace.add_argument("path", help="path to a trace JSON document")
    trace.add_argument("--format", choices=("text", "json"), default="text")

    tradeoff = sub.add_parser(
        "tradeoff", help="print the Theorem 4.2 frontier"
    )
    tradeoff.add_argument(
        "--epsilons",
        type=float,
        nargs="+",
        default=[0.1, 0.5, 1.0, 2.0, 5.0, 20.0],
    )
    tradeoff.add_argument("--n", type=int, default=2)
    tradeoff.add_argument("--grid-size", type=int, default=5)
    tradeoff.add_argument("--p", type=float, default=0.7)

    release = sub.add_parser(
        "release", help="one ε-DP Gibbs release on sampled data"
    )
    release.add_argument("--epsilon", type=float, default=1.0)
    release.add_argument("--n", type=int, default=100)
    release.add_argument("--grid-size", type=int, default=21)
    release.add_argument("--p", type=float, default=0.8)
    release.add_argument("--seed", type=int, default=0)

    serve = sub.add_parser(
        "serve",
        help="live demo of the serving front door on the real clock",
    )
    _add_workload_flags(serve)

    loadtest = sub.add_parser(
        "loadtest",
        help="deterministic simulated-clock load test writing "
        "LOADTEST_<id>.json",
    )
    _add_workload_flags(loadtest)
    loadtest.add_argument(
        "--output-dir",
        default="loadtest_results",
        help="directory receiving LOADTEST_<id>.json "
        "(default: loadtest_results)",
    )
    loadtest.add_argument(
        "--compare-unbatched",
        action="store_true",
        help="also run the workload with batching disabled and report "
        "the wall-clock speedup batching delivered",
    )
    loadtest.add_argument(
        "--compare",
        metavar="BASELINE",
        default=None,
        help="compare this run's wall seconds against the "
        "LOADTEST_<id> entry of a committed perf_baseline.json; "
        "exit 1 on regression",
    )
    loadtest.add_argument(
        "--tolerance",
        type=float,
        default=5.0,
        help="largest acceptable measured/baseline slowdown ratio for "
        "--compare (default: 5.0 — CI runner speeds vary widely)",
    )
    loadtest.add_argument(
        "--format", choices=("text", "json"), default="text"
    )

    lint = sub.add_parser(
        "lint", help="run the dplint static analyzer over the source tree"
    )
    lint.add_argument(
        "paths",
        nargs="*",
        help="files or directories to analyze (default: the installed "
        "repro package)",
    )
    lint.add_argument(
        "--format", choices=("text", "json", "sarif"), default="text"
    )
    lint.add_argument("--select", action="append", default=[], metavar="RULE")
    lint.add_argument("--ignore", action="append", default=[], metavar="RULE")
    lint.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="analyze files across N processes (output identical to serial)",
    )
    lint.add_argument(
        "--baseline",
        metavar="FILE",
        help="suppress findings recorded in this baseline JSON file",
    )
    lint.add_argument(
        "--write-baseline",
        metavar="FILE",
        help="write current findings to FILE as a suppression baseline",
    )
    lint.add_argument(
        "--config",
        metavar="FILE",
        help="read [tool.dplint] from this pyproject.toml",
    )
    lint.add_argument(
        "--no-config",
        action="store_true",
        help="ignore any pyproject.toml [tool.dplint] section",
    )
    lint.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalog and exit",
    )
    return parser


def _add_workload_flags(subparser) -> None:
    """Attach the shared serving-workload flags (``serve``/``loadtest``).

    Parameters
    ----------
    subparser:
        The ``serve`` or ``loadtest`` argparse subparser.
    """
    subparser.add_argument(
        "--id", default="smoke", dest="loadtest_id",
        help="workload id stamped on the report (default: smoke)",
    )
    subparser.add_argument("--clients", type=int, default=8)
    subparser.add_argument("--requests-per-client", type=int, default=4)
    subparser.add_argument("--tenants", type=int, default=2)
    subparser.add_argument("--seed", type=int, default=0)
    subparser.add_argument(
        "--mechanism", choices=("laplace", "exponential"), default="laplace"
    )
    subparser.add_argument(
        "--epsilon", type=float, default=0.05, help="per-release ε"
    )
    subparser.add_argument(
        "--budget", type=float, default=50.0, help="per-tenant ε budget"
    )
    subparser.add_argument(
        "--shards", type=int, default=4, help="accountant shards per tenant"
    )
    subparser.add_argument(
        "--candidates", type=int, default=64,
        help="candidate-range size for --mechanism exponential",
    )
    subparser.add_argument(
        "--mean-think", type=float, default=0.01,
        help="mean client think time in clock seconds",
    )
    subparser.add_argument("--flush-window", type=float, default=0.02)
    subparser.add_argument("--max-batch", type=int, default=256)
    subparser.add_argument(
        "--timeout", type=float, default=None,
        help="per-request clock timeout in seconds",
    )
    subparser.add_argument(
        "--retries", type=int, default=0, help="batch retry budget"
    )
    subparser.add_argument(
        "--no-batching", action="store_true",
        help="serve every request as its own immediate batch",
    )


def _workload_spec(args):
    """Build a :class:`LoadTestSpec` from parsed workload flags."""
    from repro.serving import LoadTestSpec

    return LoadTestSpec(
        loadtest_id=args.loadtest_id,
        clients=args.clients,
        requests_per_client=args.requests_per_client,
        tenants=args.tenants,
        seed=args.seed,
        mechanism=args.mechanism,
        epsilon=args.epsilon,
        budget_epsilon=args.budget,
        shards=args.shards,
        candidates=args.candidates,
        mean_think=args.mean_think,
        flush_window=args.flush_window,
        max_batch=args.max_batch,
        request_timeout=args.timeout,
        max_retries=args.retries,
        batching=not args.no_batching,
    )


def _summarize_workload(report, title) -> None:
    """Print the run summary table shared by ``serve`` and ``loadtest``."""
    from repro.experiments import ResultTable

    deterministic = report["deterministic"]
    serving = deterministic["serving"]
    table = ResultTable(
        ["requests", "flushes", "released", "timeouts", "refusals",
         "failures"],
        title=title,
    )
    table.add_row(
        deterministic["requests"],
        serving["flushes"],
        serving["released"],
        serving["timeouts"],
        serving["refusals"],
        serving["batch_failures"],
    )
    print(table)
    tenant_table = ResultTable(
        ["tenant", "budget ε", "spent ε", "over-spend"],
        title="Tenant budgets",
    )
    for tenant in deterministic["tenants"]:
        tenant_table.add_row(
            tenant["tenant_id"],
            tenant["budget_epsilon"],
            round(tenant["spent_epsilon"], 6),
            "YES" if tenant["over_spend"] else "no",
        )
    print(tenant_table)
    wall = report["wall_clock"]
    print(
        f"wall clock: {wall['seconds']:.4f}s "
        f"({wall['requests_per_second']:.0f} req/s)"
    )


def _workload_ok(report) -> bool:
    """Whether a run is clean: no tenant over-spend, no failed batch."""
    deterministic = report["deterministic"]
    over = any(t["over_spend"] for t in deterministic["tenants"])
    return not over and deterministic["serving"]["batch_failures"] == 0


def _cmd_serve(args) -> int:
    from repro.exceptions import ValidationError
    from repro.serving import run_loadtest

    try:
        spec = _workload_spec(args)
        report = run_loadtest(spec, simulated=False)
    except ValidationError as error:
        print(f"serve: {error}", file=sys.stderr)
        return 2
    _summarize_workload(
        report, f"Serving demo (real clock, id={spec.loadtest_id})"
    )
    return 0 if _workload_ok(report) else 1


def _cmd_loadtest(args) -> int:
    import json

    from repro.exceptions import ValidationError
    from repro.serving import measure_speedup, run_loadtest, write_report

    try:
        spec = _workload_spec(args)
        if args.compare_unbatched:
            report, unbatched, speedup = measure_speedup(spec)
        else:
            report, unbatched, speedup = run_loadtest(spec), None, None
        path = write_report(report, args.output_dir)
    except ValidationError as error:
        print(f"loadtest: {error}", file=sys.stderr)
        return 2
    if args.format == "json":
        print(json.dumps(report, indent=2))
    else:
        _summarize_workload(
            report, f"Load test (simulated clock, id={spec.loadtest_id})"
        )
    print(f"load-test report written: {path}", file=sys.stderr)
    if speedup is not None:
        print(
            f"batching speedup: {speedup:.2f}x "
            f"(unbatched {unbatched['wall_clock']['seconds']:.4f}s vs "
            f"batched {report['wall_clock']['seconds']:.4f}s)",
            file=sys.stderr,
        )
    if not _workload_ok(report):
        print(
            "loadtest FAILED: tenant over-spend or batch failures detected",
            file=sys.stderr,
        )
        return 1
    if args.compare is not None:
        return _loadtest_compare(args, spec, report)
    return 0


def _loadtest_compare(args, spec, report) -> int:
    """Gate a load-test run's wall seconds against the perf baseline."""
    from repro.exceptions import ValidationError
    from repro.experiments import load_baseline

    if args.tolerance <= 0:
        print("loadtest: --tolerance must be > 0", file=sys.stderr)
        return 2
    try:
        baseline = load_baseline(args.compare)
    except ValidationError as error:
        print(f"loadtest: {error}", file=sys.stderr)
        return 2
    key = f"LOADTEST_{spec.loadtest_id}"
    entry = baseline.experiments.get(key)
    if entry is None:
        print(
            f"loadtest: baseline {args.compare} has no {key!r} entry",
            file=sys.stderr,
        )
        return 2
    measured = report["wall_clock"]["seconds"]
    requests = report["deterministic"]["requests"]
    if entry.get("configurations", 0) != requests:
        print(
            f"loadtest PERF GATE: workload changed ({requests} requests vs "
            f"{entry.get('configurations', 0)} in the baseline); "
            f"re-baseline {key}",
            file=sys.stderr,
        )
        return 1
    ratio = measured / entry["seconds"]
    if ratio > args.tolerance:
        print(
            f"loadtest PERF REGRESSION: {measured:.4f}s is "
            f"{ratio:.2f}x the committed {entry['seconds']:.4f}s "
            f"(tolerance {args.tolerance:g}x)",
            file=sys.stderr,
        )
        return 1
    print(
        f"loadtest perf OK: {measured:.4f}s vs baseline "
        f"{entry['seconds']:.4f}s ({ratio:.2f}x <= {args.tolerance:g}x)",
        file=sys.stderr,
    )
    return 0


def _add_trace_flags(subparser) -> None:
    """Attach the shared ``--trace`` / ``--trace-json`` observability flags.

    Parameters
    ----------
    subparser:
        The ``bench`` or ``audit`` argparse subparser.
    """
    subparser.add_argument(
        "--trace",
        action="store_true",
        help="collect a trace (spans, counters, privacy ledger) and print "
        "its summary to stderr when the command finishes",
    )
    subparser.add_argument(
        "--trace-json",
        metavar="PATH",
        default=None,
        help="collect a trace and write the full JSON document to PATH "
        "(inspect it with `repro trace PATH`)",
    )


def _with_tracing(args, name: str, body) -> int:
    """Run ``body()`` under a tracer when the trace flags ask for one.

    Parameters
    ----------
    args:
        Parsed CLI arguments carrying ``trace`` / ``trace_json``.
    name:
        Tracer name stored on the exported document.
    body:
        Zero-argument callable returning the command's exit code.
    """
    if not (args.trace or args.trace_json):
        return body()
    from repro.observability import ConsoleSink, FileSink, Tracer, tracing

    tracer = Tracer(name)
    with tracing(tracer):
        code = body()
    if args.trace:
        ConsoleSink().emit(tracer)
    if args.trace_json:
        path = FileSink(args.trace_json).emit(tracer)
        print(f"trace written to {path}", file=sys.stderr)
    return code


def _cmd_experiments(args) -> int:
    from repro.experiments import ResultTable
    from repro.experiments.registry import EXPERIMENTS

    table = ResultTable(["id", "claim", "bench"], title="Experiments")
    for experiment in EXPERIMENTS:
        table.add_row(experiment.id, experiment.claim, experiment.bench)
    print(table)
    return 0


def _cmd_bench(args) -> int:
    return _with_tracing(args, "repro bench", lambda: _bench_body(args))


def _bench_body(args) -> int:
    import json

    from repro.exceptions import ValidationError
    from repro.experiments import (
        BenchmarkEngine,
        PerfBaseline,
        ResultCache,
        ResultTable,
        compare_to_baseline,
        load_baseline,
        select_experiments,
    )

    try:
        selected = select_experiments(args.experiments)
    except ValidationError as error:
        print(f"bench: {error}", file=sys.stderr)
        return 2
    if args.list_experiments:
        for experiment in selected:
            print(f"{experiment.id}  {experiment.bench}")
        return 0
    baseline = None
    if args.compare is not None:
        # Fail on a bad baseline *before* spending a bench run on it.
        try:
            baseline = load_baseline(args.compare)
        except ValidationError as error:
            print(f"bench: {error}", file=sys.stderr)
            return 2
    perf_mode = args.compare is not None or args.write_baseline is not None
    if perf_mode and not args.no_cache:
        # Cached timings are not timings; perf modes always measure fresh.
        print(
            "bench: --compare/--write-baseline force fresh timings "
            "(result cache bypassed)",
            file=sys.stderr,
        )
    try:
        engine = BenchmarkEngine(
            workers=args.workers,
            timeout=args.timeout,
            retries=args.retries,
            cache=(
                None
                if args.no_cache or perf_mode
                else ResultCache(args.cache_dir)
            ),
            output_dir=args.output_dir,
        )
        if args.tolerance <= 0:
            raise ValidationError("--tolerance must be > 0")
    except ValidationError as error:
        print(f"bench: {error}", file=sys.stderr)
        return 2

    manifests = []
    for experiment in selected:
        try:
            manifests.append(engine.run_experiment(experiment))
        except ValidationError as error:
            print(f"bench: {experiment.id}: {error}", file=sys.stderr)
            return 2

    failures = sum(manifest.failures for manifest in manifests)
    if args.format == "json":
        payload = {
            "workers": args.workers,
            "cache": not args.no_cache,
            "failures": failures,
            "manifests": [manifest.to_dict() for manifest in manifests],
        }
        print(json.dumps(payload, indent=2))
    else:
        table = ResultTable(
            ["id", "configs", "cache hits", "failures", "seconds", "manifest"],
            title=f"Benchmark engine run (workers={args.workers})",
        )
        for manifest in manifests:
            table.add_row(
                manifest.experiment_id,
                len(manifest.records),
                manifest.cache_hits,
                manifest.failures,
                manifest.total_seconds,
                f"{args.output_dir}/BENCH_{manifest.experiment_id}.json",
            )
        print(table)
        verdict = "OK" if failures == 0 else "FAILED"
        print(
            f"bench {verdict}: "
            f"{sum(len(m.records) for m in manifests)} configurations, "
            f"{sum(m.cache_hits for m in manifests)} cache hits, "
            f"{failures} failures"
        )
    if failures:
        return 1

    if args.write_baseline is not None:
        try:
            note = f"repro bench {' '.join(args.experiments) or 'all'}"
            path = PerfBaseline.from_manifests(manifests, note=note).write(
                args.write_baseline
            )
        except ValidationError as error:
            print(f"bench: {error}", file=sys.stderr)
            return 2
        print(f"perf baseline written: {path}", file=sys.stderr)

    if baseline is not None:
        try:
            comparison = compare_to_baseline(
                manifests, baseline, tolerance=args.tolerance
            )
        except ValidationError as error:
            print(f"bench: {error}", file=sys.stderr)
            return 2
        report_path = args.compare_output or str(
            Path(args.output_dir) / "PERF_COMPARE.json"
        )
        Path(report_path).parent.mkdir(parents=True, exist_ok=True)
        Path(report_path).write_text(
            json.dumps(comparison.to_dict(), indent=2) + "\n"
        )
        table = ResultTable(
            ["id", "baseline s", "measured s", "ratio", "verdict"],
            title=f"Perf comparison (tolerance {comparison.tolerance:g}x)",
        )
        for entry in comparison.entries:
            verdict = "ok"
            if entry.configurations_changed:
                verdict = "SWEEP CHANGED"
            elif entry.regressed:
                verdict = "REGRESSED"
            table.add_row(
                entry.experiment_id,
                round(entry.baseline_seconds, 4),
                round(entry.measured_seconds, 4),
                round(entry.ratio, 3),
                verdict,
            )
        print(table, file=sys.stderr)
        if not comparison.ok:
            slowest = ", ".join(e.experiment_id for e in comparison.regressions)
            print(
                f"bench PERF REGRESSION: {slowest} exceeded "
                f"{comparison.tolerance:g}x of the committed baseline "
                f"({args.compare}); report: {report_path}",
                file=sys.stderr,
            )
            return 1
        print(
            f"bench perf OK: {len(comparison.entries)} experiment(s) within "
            f"{comparison.tolerance:g}x of baseline; report: {report_path}",
            file=sys.stderr,
        )
    return 0


def _cmd_audit(args) -> int:
    return _with_tracing(args, "repro audit", lambda: _audit_body(args))


def _audit_body(args) -> int:
    import json

    from repro.exceptions import ValidationError
    from repro.experiments import ResultTable
    from repro.privacy import ExactPrivacyAuditor
    from repro.testing import AUDIT_FAMILIES, build_audit, run_audit
    from repro.testing.statistical import derive_seed

    if args.list_families:
        for family in AUDIT_FAMILIES:
            print(family)
        return 0
    families = args.families or list(AUDIT_FAMILIES)
    unknown = sorted(set(families) - set(AUDIT_FAMILIES))
    if unknown:
        # Mirror lint's usage contract: a typo'd family must not exit 0.
        print(
            f"audit: unknown famil{'ies' if len(unknown) > 1 else 'y'}: "
            f"{', '.join(unknown)}; see `repro audit --list`",
            file=sys.stderr,
        )
        return 2
    try:
        reports = []
        for family in families:
            prepared = build_audit(
                family,
                epsilon=args.epsilon,
                n=args.n,
                noise_scale=args.noise_scale,
            )
            reports.append(
                run_audit(
                    prepared,
                    n_samples=args.samples,
                    confidence=args.confidence,
                    random_state=derive_seed(family, base_seed=args.seed),
                )
            )
    except ValidationError as error:
        print(f"audit: {error}", file=sys.stderr)
        return 2

    exact_report = None
    if "gibbs" in families and not args.skip_exact:
        prepared = build_audit(
            "gibbs", epsilon=args.epsilon, n=args.n, noise_scale=args.noise_scale
        )
        exact_report = ExactPrivacyAuditor(
            prepared.mechanism.output_distribution
        ).audit([0, 1], args.n, claimed_epsilon=prepared.epsilon)

    all_ok = all(r.satisfied for r in reports) and (
        exact_report is None or exact_report.satisfied
    )
    if args.format == "json":
        payload = {
            "epsilon": args.epsilon,
            "n": args.n,
            "samples": args.samples,
            "confidence": args.confidence,
            "seed": args.seed,
            "noise_scale": args.noise_scale,
            "satisfied": all_ok,
            "reports": [r.to_dict() for r in reports],
        }
        if exact_report is not None:
            payload["gibbs_exact"] = {
                "measured_epsilon": exact_report.measured_epsilon,
                "claimed_epsilon": exact_report.claimed_epsilon,
                "satisfied": exact_report.satisfied,
                "pairs_checked": exact_report.pairs_checked,
            }
        print(json.dumps(payload, indent=2))
    else:
        table = ResultTable(
            ["family", "claimed ε", "certified ε ≥", "point est.", "verdict"],
            title=(
                f"Statistical DP audits (n={args.n}, {args.samples} samples"
                f"/side, confidence {args.confidence:g})"
            ),
        )
        for report in reports:
            table.add_row(
                report.mechanism,
                report.claimed_epsilon,
                report.epsilon_lower_bound,
                report.point_estimate,
                "OK" if report.satisfied else "VIOLATION",
            )
        print(table)
        if exact_report is not None:
            print(f"gibbs exact enumeration: {exact_report}")
        verdict = "OK" if all_ok else "FAILED"
        print(
            f"audit {verdict}: "
            f"{sum(r.satisfied for r in reports)}/{len(reports)} statistical "
            f"audits within claimed ε"
        )
    return 0 if all_ok else 1


def _cmd_audit_summary(args) -> int:
    import json

    try:
        payload = json.loads(Path(args.path).read_text())
    except OSError as error:
        print(f"audit-summary: cannot read {args.path}: {error}", file=sys.stderr)
        return 2
    except json.JSONDecodeError as error:
        print(f"audit-summary: {args.path} is not valid JSON: {error}",
              file=sys.stderr)
        return 2
    reports = payload.get("reports")
    if not isinstance(reports, list) or not isinstance(payload, dict):
        print(
            f"audit-summary: {args.path} is not a `repro audit --format "
            "json` report (missing 'reports')",
            file=sys.stderr,
        )
        return 2

    satisfied = bool(payload.get("satisfied"))
    verdict = "✅ all audits within claimed ε" if satisfied else "❌ VIOLATION"
    print("## Nightly statistical DP audits")
    print()
    print(f"**{verdict}** — n={payload.get('n')}, "
          f"{payload.get('samples')} samples/side, "
          f"confidence {payload.get('confidence')}, "
          f"seed {payload.get('seed')}")
    print()
    print("| family | claimed ε | certified ε ≥ | point est. | verdict |")
    print("|---|---|---|---|---|")
    for report in reports:
        mark = "ok" if report.get("satisfied") else "**VIOLATION**"
        print(
            f"| {report.get('mechanism')} "
            f"| {report.get('claimed_epsilon'):.4g} "
            f"| {report.get('epsilon_lower_bound'):.4f} "
            f"| {report.get('point_estimate'):.4f} "
            f"| {mark} |"
        )
    exact = payload.get("gibbs_exact")
    if isinstance(exact, dict):
        mark = "ok" if exact.get("satisfied") else "**VIOLATION**"
        print()
        print(
            f"Gibbs exact enumeration: measured ε = "
            f"{exact.get('measured_epsilon'):.4f} vs claimed "
            f"{exact.get('claimed_epsilon'):.4g} over "
            f"{exact.get('pairs_checked')} neighbour pairs — {mark}"
        )
    return 0


def _cmd_tradeoff(args) -> int:
    from repro.core import tradeoff_curve
    from repro.experiments import ResultTable
    from repro.learning import BernoulliTask, PredictorGrid, empirical_risk_matrix

    task = BernoulliTask(p=args.p)
    grid = PredictorGrid.linspace(task.loss, 0.0, 1.0, args.grid_size)
    datasets = list(itertools.product([0, 1], repeat=args.n))
    risks = empirical_risk_matrix(
        lambda t, z: abs(t - z), grid.thetas, [list(d) for d in datasets]
    )
    source = np.array(
        [
            np.prod([args.p if z else 1 - args.p for z in dataset])
            for dataset in datasets
        ]
    )
    points = tradeoff_curve(source, risks, args.epsilons)
    table = ResultTable(
        ["epsilon", "I(Z;theta) nats", "E empirical risk", "objective"],
        title=f"Theorem 4.2 frontier, Bernoulli({args.p}), n={args.n}",
    )
    for point in points:
        table.add_row(
            point.epsilon,
            point.mutual_information,
            point.expected_empirical_risk,
            point.objective,
        )
    print(table)
    return 0


def _cmd_release(args) -> int:
    from repro.core import GibbsEstimator
    from repro.learning import BernoulliTask, PredictorGrid

    task = BernoulliTask(p=args.p)
    sample = list(task.sample(args.n, random_state=args.seed))
    grid = PredictorGrid.linspace(task.loss, 0.0, 1.0, args.grid_size)
    estimator = GibbsEstimator.from_privacy(
        grid, args.epsilon, expected_sample_size=args.n
    )
    theta = estimator.release(sample, random_state=args.seed + 1)
    print(f"released theta = {theta:.4f} under {estimator.privacy}")
    print(f"true risk R(theta) = {task.true_risk(theta):.4f} "
          f"(Bayes {task.bayes_risk():.4f})")
    return 0


def _cmd_lint(args) -> int:
    from repro.analysis.__main__ import execute

    return execute(args)


def _cmd_trace(args) -> int:
    import json

    from repro.exceptions import ValidationError
    from repro.observability import load_trace, render_trace

    try:
        payload = load_trace(args.path)
    except ValidationError as error:
        print(f"trace: {error}", file=sys.stderr)
        return 2
    if args.format == "json":
        print(json.dumps(payload, indent=2))
    else:
        print(render_trace(payload))
    return 0


_COMMANDS = {
    "experiments": _cmd_experiments,
    "bench": _cmd_bench,
    "audit": _cmd_audit,
    "audit-summary": _cmd_audit_summary,
    "trace": _cmd_trace,
    "tradeoff": _cmd_tradeoff,
    "release": _cmd_release,
    "serve": _cmd_serve,
    "loadtest": _cmd_loadtest,
    "lint": _cmd_lint,
}


def main(argv=None) -> int:
    """Entry point; returns a process exit code."""
    args = _build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
