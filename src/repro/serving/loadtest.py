"""Deterministic load testing of the serving front door.

The harness drives a fleet of simulated clients against a
:class:`~repro.serving.service.ReleaseService` under a
:class:`~repro.serving.clock.SimulatedClock`: every think-time, flush
window, and timeout lives on the virtual timeline, and every client's
behaviour is derived from the spec seed. Two runs of the same
:class:`LoadTestSpec` therefore produce **bit-identical reports modulo
the wall-clock section** — outcomes, output digests, simulated
latencies, and per-tenant spends all reproduce exactly, which is what
lets CI diff a load test like any other artifact.

Reports are schema-versioned JSON (``LOADTEST_<id>.json``); use
:func:`deterministic_view` to strip the wall-clock fields before
comparing, and :func:`measure_speedup` to quantify what window batching
buys over serving each request alone.
"""

from __future__ import annotations

import asyncio
import dataclasses
import hashlib
import json
import time
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.exceptions import (
    PrivacyBudgetError,
    ServingError,
    ServingTimeoutError,
    ValidationError,
)
from repro.mechanisms.base import Mechanism, PrivacySpec
from repro.mechanisms.exponential import ExponentialMechanism
from repro.mechanisms.laplace import LaplaceMechanism
from repro.observability import Tracer, tracing
from repro.observability.metrics import HistogramSummary
from repro.serving.clock import SimulatedClock, SystemClock
from repro.serving.service import ReleaseService, ServiceConfig
from repro.serving.tenants import TenantRegistry
from repro.testing.statistical import derive_seed
from repro.utils.validation import check_random_state

__all__ = [
    "LOADTEST_SCHEMA_VERSION",
    "LoadTestSpec",
    "deterministic_view",
    "measure_speedup",
    "run_loadtest",
    "validate_report",
    "write_report",
]

#: Version stamped on every report; bump on breaking layout changes.
LOADTEST_SCHEMA_VERSION = 1

#: Keys every report must carry (checked by :func:`validate_report`).
_REPORT_KEYS = ("schema_version", "loadtest_id", "spec", "deterministic",
                "wall_clock")
_DETERMINISTIC_KEYS = ("requests", "outcomes", "outputs_digest",
                       "simulated_seconds", "latency", "tenants", "serving")


@dataclass(frozen=True)
class LoadTestSpec:
    """A complete, seedable description of one load test.

    Parameters
    ----------
    loadtest_id:
        Identifier stamped on the report (``LOADTEST_<id>.json``).
    clients:
        Number of concurrent simulated clients.
    requests_per_client:
        Releases each client requests, one submit at a time.
    tenants:
        Tenant pool size; client ``i`` belongs to tenant ``i % tenants``.
    seed:
        Root seed; every client stream and tenant stream derives from it.
    mechanism:
        ``"laplace"`` (cheap scalar query) or ``"exponential"``
        (candidate scoring, where batching amortizes the tilt).
    epsilon:
        Per-release ε of the served mechanism.
    budget_epsilon:
        Each tenant's total ε budget.
    shards:
        Accountant shards per tenant.
    candidates:
        Candidate-range size for the exponential mechanism.
    mean_think:
        Mean virtual seconds a client idles between requests.
    flush_window / max_batch / request_timeout / max_retries / batching:
        Forwarded to :class:`~repro.serving.service.ServiceConfig`.
    """

    loadtest_id: str = "smoke"
    clients: int = 8
    requests_per_client: int = 4
    tenants: int = 2
    seed: int = 0
    mechanism: str = "laplace"
    epsilon: float = 0.05
    budget_epsilon: float = 50.0
    shards: int = 4
    candidates: int = 64
    mean_think: float = 0.01
    flush_window: float = 0.02
    max_batch: int = 256
    request_timeout: float | None = None
    max_retries: int = 0
    batching: bool = True

    def __post_init__(self) -> None:
        if not isinstance(self.loadtest_id, str) or not self.loadtest_id:
            raise ValidationError("loadtest_id must be a non-empty string")
        for name in ("clients", "requests_per_client", "tenants", "candidates"):
            value = getattr(self, name)
            if not isinstance(value, int) or value < 1:
                raise ValidationError(f"{name} must be an integer >= 1")
        if self.mechanism not in ("laplace", "exponential"):
            raise ValidationError(
                f"mechanism must be 'laplace' or 'exponential', "
                f"got {self.mechanism!r}"
            )
        if self.mean_think < 0:
            raise ValidationError("mean_think must be >= 0")

    def to_dict(self) -> dict:
        """The spec as a JSON-serializable dict."""
        return dataclasses.asdict(self)


def _build_mechanism(spec: LoadTestSpec) -> Mechanism:
    """The served mechanism for a spec (dataset-independent construction)."""
    if spec.mechanism == "laplace":
        return LaplaceMechanism(
            lambda d: float(np.sum(d)), sensitivity=1.0, epsilon=spec.epsilon
        )
    return ExponentialMechanism(
        lambda d, u: -abs(float(np.sum(d)) - u),
        outputs=range(spec.candidates),
        sensitivity=1.0,
        epsilon=spec.epsilon,
    )


def _build_service(spec: LoadTestSpec, clock) -> tuple[ReleaseService, object]:
    """Registry + service + shared dataset for one load-test run."""
    registry = TenantRegistry()
    for index in range(spec.tenants):
        registry.register(
            f"tenant-{index}",
            PrivacySpec(spec.budget_epsilon),
            seed=derive_seed("loadtest.tenant", spec.loadtest_id, index,
                             base_seed=spec.seed),
            shards=spec.shards,
        )
    service = ReleaseService(
        registry,
        clock=clock,
        config=ServiceConfig(
            flush_window=spec.flush_window,
            max_batch=spec.max_batch,
            request_timeout=spec.request_timeout,
            max_retries=spec.max_retries,
            batching=spec.batching,
        ),
    )
    service.add_mechanism(spec.mechanism, _build_mechanism(spec))
    data_rng = check_random_state(
        derive_seed("loadtest.dataset", spec.loadtest_id, base_seed=spec.seed)
    )
    dataset = data_rng.integers(0, 2, size=32)
    return service, dataset


async def _client(spec, service, clock, dataset, client_index, records):
    """One simulated client: think, submit, record the outcome."""
    rng = check_random_state(
        derive_seed("loadtest.client", spec.loadtest_id, client_index,
                    base_seed=spec.seed)
    )
    tenant_id = f"tenant-{client_index % spec.tenants}"
    for request_index in range(spec.requests_per_client):
        if spec.mean_think > 0:
            await clock.sleep(float(rng.uniform(0.0, 2.0 * spec.mean_think)))
        started = clock.now()
        outputs: list = []
        try:
            outputs = await service.submit(
                tenant_id, spec.mechanism, dataset, n=1
            )
            outcome = "ok"
        except PrivacyBudgetError:
            outcome = "refused"
        except ServingTimeoutError:
            outcome = "timeout"
        except ServingError:
            outcome = "error"
        records.append(
            (
                client_index,
                request_index,
                outcome,
                [float(value) for value in outputs],
                clock.now() - started,
            )
        )


async def _fleet(spec, service, clock, dataset, records) -> None:
    """All clients concurrently, then a graceful drain."""
    await asyncio.gather(
        *(
            _client(spec, service, clock, dataset, index, records)
            for index in range(spec.clients)
        )
    )
    await service.drain()


def run_loadtest(spec: LoadTestSpec, *, simulated: bool = True) -> dict:
    """Execute one load test and return its report.

    Parameters
    ----------
    spec:
        The workload description.
    simulated:
        ``True`` (default) drives everything on a
        :class:`~repro.serving.clock.SimulatedClock`, making the report's
        ``deterministic`` section bit-reproducible. ``False`` uses real
        time (the ``repro serve`` demo mode); only the report layout is
        stable then.
    """
    if not isinstance(spec, LoadTestSpec):
        raise ValidationError("spec must be a LoadTestSpec")
    clock = SimulatedClock() if simulated else SystemClock()
    service, dataset = _build_service(spec, clock)
    records: list[tuple] = []
    tracer = Tracer(f"loadtest:{spec.loadtest_id}")
    started_wall = time.perf_counter()
    simulated_start = clock.now()
    with tracing(tracer):
        if simulated:
            clock.run(_fleet(spec, service, clock, dataset, records))
        else:
            asyncio.run(_fleet(spec, service, clock, dataset, records))
    wall_seconds = time.perf_counter() - started_wall
    return _report(spec, service, records, tracer,
                   clock.now() - simulated_start, wall_seconds)


def _report(spec, service, records, tracer, simulated_seconds, wall_seconds):
    """Assemble the schema-versioned report from one run's raw records."""
    records = sorted(records, key=lambda record: (record[0], record[1]))
    outcomes: dict[str, int] = {}
    latency = HistogramSummary()
    digest = hashlib.sha256()
    for client_index, request_index, outcome, outputs, seconds in records:
        outcomes[outcome] = outcomes.get(outcome, 0) + 1
        latency.observe(seconds)
        digest.update(
            repr((client_index, request_index, outcome, outputs)).encode()
        )
    tenants = []
    for tenant_id in service.registry.tenant_ids():
        accountant = service.registry.get(tenant_id).accountant
        spent = accountant.spent_epsilon
        budget = accountant.budget.epsilon
        tenants.append(
            {
                "tenant_id": tenant_id,
                "budget_epsilon": budget,
                "spent_epsilon": spent,
                "over_spend": bool(spent > budget * (1.0 + 1e-9)),
            }
        )
    counters = tracer.metrics.counters
    return {
        "schema_version": LOADTEST_SCHEMA_VERSION,
        "loadtest_id": spec.loadtest_id,
        "spec": spec.to_dict(),
        "deterministic": {
            "requests": len(records),
            "outcomes": {name: outcomes[name] for name in sorted(outcomes)},
            "outputs_digest": digest.hexdigest(),
            "simulated_seconds": simulated_seconds,
            "latency": latency.to_dict(),
            "tenants": tenants,
            "serving": {
                "flushes": int(counters.get("serving.flushes", 0)),
                "coalesced_requests": int(counters.get("serving.coalesced", 0)),
                "released": int(counters.get("serving.released", 0)),
                "timeouts": int(counters.get("serving.timeouts", 0)),
                "batch_failures": int(counters.get("serving.batch_failures", 0)),
                "refusals": int(counters.get("accountant.refusals", 0)),
            },
        },
        "wall_clock": {
            "seconds": wall_seconds,
            "requests_per_second": (
                len(records) / wall_seconds if wall_seconds > 0 else 0.0
            ),
        },
    }


def deterministic_view(report: dict) -> dict:
    """The report minus its wall-clock section (the comparable part).

    Parameters
    ----------
    report:
        A report produced by :func:`run_loadtest`.
    """
    validate_report(report)
    return {
        key: report[key] for key in _REPORT_KEYS if key != "wall_clock"
    }


def validate_report(report: dict) -> None:
    """Check a report against the current schema, raising on violations.

    Parameters
    ----------
    report:
        The parsed ``LOADTEST_<id>.json`` payload.
    """
    if not isinstance(report, dict):
        raise ValidationError("load-test report must be a dict")
    missing = [key for key in _REPORT_KEYS if key not in report]
    if missing:
        raise ValidationError(f"load-test report is missing keys: {missing}")
    if report["schema_version"] != LOADTEST_SCHEMA_VERSION:
        raise ValidationError(
            f"unsupported load-test schema_version "
            f"{report['schema_version']!r} (expected {LOADTEST_SCHEMA_VERSION})"
        )
    deterministic = report["deterministic"]
    if not isinstance(deterministic, dict):
        raise ValidationError("'deterministic' section must be a dict")
    absent = [key for key in _DETERMINISTIC_KEYS if key not in deterministic]
    if absent:
        raise ValidationError(
            f"'deterministic' section is missing keys: {absent}"
        )


def write_report(report: dict, output_dir) -> Path:
    """Write ``LOADTEST_<id>.json`` under ``output_dir`` and return its path.

    Parameters
    ----------
    report:
        A validated report from :func:`run_loadtest`.
    output_dir:
        Directory receiving the file (created if needed).
    """
    validate_report(report)
    directory = Path(output_dir)
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / f"LOADTEST_{report['loadtest_id']}.json"
    path.write_text(json.dumps(report, indent=2) + "\n")
    return path


def measure_speedup(spec: LoadTestSpec) -> tuple[dict, dict, float]:
    """Run a spec batched and unbatched; report both and the speedup.

    Parameters
    ----------
    spec:
        The workload; its ``batching`` flag is overridden both ways.

    Returns
    -------
    tuple
        ``(batched_report, unbatched_report, speedup)`` where ``speedup``
        is the unbatched/batched wall-seconds ratio (> 1 means batching
        won).
    """
    batched = run_loadtest(dataclasses.replace(spec, batching=True))
    unbatched = run_loadtest(dataclasses.replace(spec, batching=False))
    batched_seconds = batched["wall_clock"]["seconds"]
    unbatched_seconds = unbatched["wall_clock"]["seconds"]
    speedup = (
        unbatched_seconds / batched_seconds if batched_seconds > 0 else float("inf")
    )
    return batched, unbatched, speedup
