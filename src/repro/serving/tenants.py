"""Tenants: per-data-owner budgets, sharded accountants, and the registry.

A serving deployment answers queries for many *tenants* (data owners),
each with its own privacy budget and its own RNG stream. This module
provides the bookkeeping the front door composes:

* :class:`ShardedAccountant` splits one (ε, δ) budget across ``k``
  independent :class:`~repro.mechanisms.PrivacyAccountant` shards, each
  with its own lock. Concurrent charges rotate over shards and fall
  through to a work-stealing scan, so hot tenants never serialize on one
  lock — and because every shard enforces its slice atomically, the sum
  of shard spends can never exceed the tenant budget, no matter the
  interleaving. The price of contention-freedom is *fragmentation*:
  a charge is refused when no single shard can afford it, which can
  happen slightly before the pooled remainder is exhausted (never
  after). Refusals are reported exactly once, by the sharded front, not
  once per probed shard.
* :class:`Tenant` pairs the accountant with a persistent, seeded
  generator, so a tenant's releases form one deterministic RNG stream
  across requests and batches.
* :class:`TenantRegistry` is the thread-safe name → tenant directory the
  service resolves requests against.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

import numpy as np

from repro.exceptions import PrivacyBudgetError, ValidationError
from repro.mechanisms.accountant import LedgerEntry, PrivacyAccountant
from repro.mechanisms.base import PrivacySpec
from repro.observability import tracer as _trace
from repro.observability.events import BudgetRefusalEvent
from repro.testing.statistical import derive_seed
from repro.utils.validation import check_random_state

__all__ = ["ShardedAccountant", "Tenant", "TenantRegistry"]


class ShardedAccountant:
    """One (ε, δ) budget enforced across ``k`` independently-locked shards.

    Parameters
    ----------
    budget:
        The tenant's total (ε, δ) budget.
    shards:
        Number of shards (≥ 1); each holds an equal ``1/k`` slice.
    """

    def __init__(self, budget: PrivacySpec, shards: int = 4) -> None:
        if not isinstance(budget, PrivacySpec):
            raise ValidationError("budget must be a PrivacySpec")
        if not isinstance(shards, int) or shards < 1:
            raise ValidationError(f"shards must be an integer >= 1, got {shards!r}")
        self.budget = budget
        self._shards = [
            PrivacyAccountant(
                PrivacySpec(budget.epsilon / shards, budget.delta / shards)
            )
            for _ in range(shards)
        ]
        self._cursor = 0
        self._cursor_lock = threading.Lock()

    @property
    def shards(self) -> int:
        """Number of budget shards."""
        return len(self._shards)

    @property
    def spent_epsilon(self) -> float:
        """Total ε recorded across all shards (basic composition)."""
        return sum(
            shard.spent.epsilon for shard in self._shards if shard.spent is not None
        )

    @property
    def spent_delta(self) -> float:
        """Total δ recorded across all shards (basic composition)."""
        return sum(
            shard.spent.delta for shard in self._shards if shard.spent is not None
        )

    @property
    def remaining_epsilon(self) -> float:
        """Unspent ε pooled over shards (an upper bound on what one charge
        can actually obtain, because a single charge must fit one shard)."""
        return sum(shard.remaining_epsilon for shard in self._shards)

    @property
    def remaining_delta(self) -> float:
        """Unspent δ pooled over shards."""
        return sum(shard.remaining_delta for shard in self._shards)

    def try_charge(self, spec: PrivacySpec, *, label: str = "release") -> bool:
        """Atomically charge one shard; silently report failure.

        Starts at a rotating cursor (spreading uncontended load) and
        work-steals across every shard before giving up. Each probe is a
        single atomic
        :meth:`~repro.mechanisms.PrivacyAccountant.try_charge`, so two
        racing charges can both succeed only if two shards can both
        afford them — total spend never exceeds the tenant budget.

        Parameters
        ----------
        spec:
            The (ε, δ) expenditure to attempt.
        label:
            Ledger label recorded with the expenditure.
        """
        with self._cursor_lock:
            start = self._cursor
            self._cursor = (self._cursor + 1) % len(self._shards)
        for offset in range(len(self._shards)):
            shard = self._shards[(start + offset) % len(self._shards)]
            if shard.try_charge(spec, label=label):
                return True
        return False

    def charge(self, spec: PrivacySpec, *, label: str = "release") -> None:
        """Charge one shard or refuse with a single ledger refusal event.

        Parameters
        ----------
        spec:
            The (ε, δ) expenditure to record.
        label:
            Ledger label recorded with the expenditure.
        """
        if self.try_charge(spec, label=label):
            return
        tracer = _trace.current()
        if tracer is not None:
            tracer.record(
                BudgetRefusalEvent(
                    label=label,
                    epsilon=spec.epsilon,
                    delta=spec.delta,
                    remaining_epsilon=self.remaining_epsilon,
                    remaining_delta=self.remaining_delta,
                )
            )
            tracer.count("accountant.refusals")
        raise PrivacyBudgetError(
            f"cannot afford {spec}: no budget shard can cover it "
            f"(pooled remaining ε={self.remaining_epsilon:.6g} across "
            f"{len(self._shards)} shard(s))"
        )

    def refund(self, spec: PrivacySpec, *, label: str = "release") -> None:
        """Roll back a reservation previously charged to some shard.

        Scans shards for the most recent matching ``(label, spec)`` entry
        and refunds it there. Only ever call this for work that provably
        did not release (see
        :meth:`~repro.mechanisms.PrivacyAccountant.refund`).

        Parameters
        ----------
        spec:
            The exact (ε, δ) of the charge being rolled back.
        label:
            The label the charge was recorded under.
        """
        for shard in self._shards:
            if any(
                entry.label == label and entry.spec == spec
                for entry in shard.ledger()
            ):
                shard.refund(spec, label=label)
                return
        raise ValidationError(
            f"no recorded charge {spec} labelled {label!r} to refund"
        )

    def ledger(self) -> list[LedgerEntry]:
        """All recorded expenditures, shard by shard."""
        entries: list[LedgerEntry] = []
        for shard in self._shards:
            entries.extend(shard.ledger())
        return entries


@dataclass
class Tenant:
    """A data owner: identity, budget shards, and a persistent RNG stream.

    Parameters
    ----------
    tenant_id:
        Unique tenant name.
    accountant:
        The tenant's sharded budget accountant.
    seed:
        Root seed of the tenant's release stream.
    """

    tenant_id: str
    accountant: ShardedAccountant
    seed: int
    rng: np.random.Generator = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        if not isinstance(self.tenant_id, str) or not self.tenant_id:
            raise ValidationError("tenant_id must be a non-empty string")
        self.rng = check_random_state(derive_seed("tenant", self.tenant_id,
                                                  base_seed=self.seed))


class TenantRegistry:
    """Thread-safe directory of registered tenants."""

    def __init__(self) -> None:
        self._tenants: dict[str, Tenant] = {}
        self._lock = threading.Lock()

    def register(
        self,
        tenant_id: str,
        budget: PrivacySpec,
        *,
        seed: int = 0,
        shards: int = 4,
    ) -> Tenant:
        """Create and store a tenant; refuse duplicate ids.

        Parameters
        ----------
        tenant_id:
            Unique tenant name.
        budget:
            Total (ε, δ) the tenant's data owner will spend.
        seed:
            Root seed of the tenant's deterministic release stream.
        shards:
            Accountant shard count (lock granularity under concurrency).
        """
        tenant = Tenant(
            tenant_id=tenant_id,
            accountant=ShardedAccountant(budget, shards=shards),
            seed=seed,
        )
        with self._lock:
            if tenant_id in self._tenants:
                raise ValidationError(f"tenant {tenant_id!r} already registered")
            self._tenants[tenant_id] = tenant
        return tenant

    def get(self, tenant_id: str) -> Tenant:
        """Look up a tenant by id, raising on unknown names.

        Parameters
        ----------
        tenant_id:
            The tenant name to resolve.
        """
        with self._lock:
            tenant = self._tenants.get(tenant_id)
        if tenant is None:
            raise ValidationError(f"unknown tenant {tenant_id!r}")
        return tenant

    def tenant_ids(self) -> list[str]:
        """Registered tenant ids, sorted."""
        with self._lock:
            return sorted(self._tenants)
