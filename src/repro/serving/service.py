"""The serving front door: admission control, batching, and robustness.

:class:`ReleaseService` is the single concurrent entry point in front of
the library's mechanisms. Every request passes through the same sequence:

1. **Admission control** — the tenant's sharded accountant is charged
   *before* anything executes (a reservation). A tenant over budget is
   refused here with a ledger
   :class:`~repro.observability.events.BudgetRefusalEvent` and a raised
   :class:`~repro.exceptions.PrivacyBudgetError`; no mechanism ever runs
   unpaid.
2. **Batching** — concurrent requests for the same (tenant, mechanism,
   dataset) within one flush window coalesce into a single
   ``release_many`` call. The batch contract of
   :meth:`repro.mechanisms.Mechanism.release_many` (stream equivalence)
   makes coalescing *invisible*: outputs are bit-identical to serving the
   same requests sequentially from the tenant's RNG stream.
3. **Robustness** — per-request clock timeouts, bounded retries with
   deterministically re-derived generators (the bench engine's
   ``reseed`` idiom), and graceful drain/abort on shutdown.

Reservation semantics: a charge is refunded **only** when the release
provably did not happen — a request that times out while still queued, a
batch that fails every retry, a queued request at abort. A request whose
batch was already executing keeps its charge even if the caller timed
out, because the ledger must never under-count a release that happened.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field

from repro.exceptions import (
    ServiceClosedError,
    ServingError,
    ServingTimeoutError,
    ValidationError,
)
from repro.experiments.runner import reseed
from repro.mechanisms.base import Mechanism, PrivacySpec
from repro.observability import tracer as _trace
from repro.serving.clock import Clock, SystemClock
from repro.serving.tenants import Tenant, TenantRegistry
from repro.testing.statistical import derive_seed
from repro.utils.validation import check_random_state

__all__ = ["ReleaseService", "ServiceConfig"]


@dataclass(frozen=True)
class ServiceConfig:
    """Tunables of the serving front door.

    Parameters
    ----------
    flush_window:
        Clock seconds a batch stays open collecting same-key requests
        before flushing.
    max_batch:
        Release count that flushes a batch immediately, ahead of its
        window.
    request_timeout:
        Per-request clock deadline (``None`` waits forever).
    max_retries:
        Batch re-execution budget after a failure; each retry draws from
        a deterministically re-derived generator.
    batching:
        ``False`` serves every request as its own immediate batch
        (the baseline the load-test harness compares against).
    """

    flush_window: float = 0.05
    max_batch: int = 64
    request_timeout: float | None = None
    max_retries: int = 0
    batching: bool = True

    def __post_init__(self) -> None:
        if self.flush_window < 0:
            raise ValidationError("flush_window must be >= 0")
        if not isinstance(self.max_batch, int) or self.max_batch < 1:
            raise ValidationError("max_batch must be an integer >= 1")
        if self.request_timeout is not None and self.request_timeout <= 0:
            raise ValidationError("request_timeout must be > 0 (or None)")
        if not isinstance(self.max_retries, int) or self.max_retries < 0:
            raise ValidationError("max_retries must be an integer >= 0")


@dataclass
class _Request:
    """One admitted release request riding a batch."""

    n: int
    cost: PrivacySpec
    label: str
    future: asyncio.Future
    abandoned: bool = False


@dataclass
class _Batch:
    """Requests coalescing toward one ``release_many`` flush."""

    key: tuple
    tenant: Tenant
    mechanism: Mechanism
    dataset: object
    index: int
    requests: list[_Request] = field(default_factory=list)
    total: int = 0
    closed: bool = False
    timer: asyncio.Task | None = None


class ReleaseService:
    """Concurrent, budget-enforcing front door over registered mechanisms.

    Single-event-loop by design: mechanism kernels execute synchronously
    on the loop, so flushes for one tenant never interleave mid-release
    and the tenant's RNG stream advances in a deterministic order under a
    :class:`~repro.serving.clock.SimulatedClock`.

    Parameters
    ----------
    registry:
        The tenant directory requests are resolved against.
    clock:
        Time source for windows and timeouts (default: real time).
    config:
        Batching/robustness tunables (default: :class:`ServiceConfig`).
    """

    def __init__(
        self,
        registry: TenantRegistry,
        *,
        clock: Clock | None = None,
        config: ServiceConfig | None = None,
    ) -> None:
        if not isinstance(registry, TenantRegistry):
            raise ValidationError("registry must be a TenantRegistry")
        self.registry = registry
        self.clock = clock if clock is not None else SystemClock()
        self.config = config if config is not None else ServiceConfig()
        self._mechanisms: dict[str, Mechanism] = {}
        self._open: dict[tuple, _Batch] = {}
        self._inflight: set[asyncio.Task] = set()
        self._batch_count = 0
        self._closed = False

    def add_mechanism(self, mechanism_id: str, mechanism: Mechanism) -> None:
        """Register a mechanism under a routable id.

        Parameters
        ----------
        mechanism_id:
            Unique name requests address the mechanism by.
        mechanism:
            The :class:`~repro.mechanisms.Mechanism` instance to serve.
        """
        if not isinstance(mechanism_id, str) or not mechanism_id:
            raise ValidationError("mechanism_id must be a non-empty string")
        if not isinstance(mechanism, Mechanism):
            raise ValidationError("mechanism must be a Mechanism")
        if mechanism_id in self._mechanisms:
            raise ValidationError(f"mechanism {mechanism_id!r} already registered")
        self._mechanisms[mechanism_id] = mechanism

    def mechanism_ids(self) -> list[str]:
        """Registered mechanism ids, sorted."""
        return sorted(self._mechanisms)

    async def submit(self, tenant_id: str, mechanism_id: str, dataset, n: int = 1):
        """Serve ``n`` releases of ``dataset`` for a tenant.

        Charges the reservation up front (raising
        :class:`~repro.exceptions.PrivacyBudgetError` on refusal), rides
        the coalescing batch for the (tenant, mechanism, dataset) key,
        and resolves to the request's slice of the flushed outputs.

        Parameters
        ----------
        tenant_id:
            The requesting tenant.
        mechanism_id:
            A mechanism previously registered with :meth:`add_mechanism`.
        dataset:
            The dataset to query, as the mechanism expects it.
        n:
            Number of releases requested (integer ≥ 1).

        Returns
        -------
        list
            The ``n`` outputs, in draw order.
        """
        if self._closed:
            raise ServiceClosedError("service is shut down; submit refused")
        tenant = self.registry.get(tenant_id)
        mechanism = self._mechanisms.get(mechanism_id)
        if mechanism is None:
            raise ValidationError(f"unknown mechanism {mechanism_id!r}")
        if not isinstance(n, int) or n < 1:
            raise ValidationError(f"n must be an integer >= 1, got {n!r}")

        spec = mechanism.privacy
        cost = PrivacySpec(spec.epsilon * n, spec.delta * n)
        label = f"serve:{tenant_id}:{mechanism_id}"
        # Admission control: reserve before anything executes. Refusals
        # raise out of here with one ledger refusal event already emitted.
        tenant.accountant.charge(cost, label=label)
        tracer = _trace.current()
        if tracer is not None:
            tracer.count("serving.requests")

        request = _Request(
            n=n, cost=cost, label=label,
            future=asyncio.get_running_loop().create_future(),
        )
        batch = self._enqueue(tenant, mechanism_id, mechanism, dataset, request)
        try:
            return await self.clock.wait_for(
                request.future, self.config.request_timeout
            )
        except ServingTimeoutError:
            if tracer is not None:
                tracer.count("serving.timeouts")
            if not batch.closed:
                # Still queued: nothing was released, so the reservation
                # rolls back and the batch skips this request at flush.
                request.abandoned = True
                tenant.accountant.refund(cost, label=label)
            raise

    def _enqueue(self, tenant, mechanism_id, mechanism, dataset, request) -> _Batch:
        """File a request into its coalescing batch (opening one if needed)."""
        if self.config.batching:
            key = (tenant.tenant_id, mechanism_id, id(dataset))
            batch = self._open.get(key)
        else:
            key = (tenant.tenant_id, mechanism_id, self._batch_count)
            batch = None
        if batch is None:
            batch = _Batch(
                key=key, tenant=tenant, mechanism=mechanism,
                dataset=dataset, index=self._batch_count,
            )
            self._batch_count += 1
            if self.config.batching:
                self._open[key] = batch
                batch.timer = asyncio.ensure_future(self._flush_after(batch))
        batch.requests.append(request)
        batch.total += request.n
        if not self.config.batching:
            self._spawn_flush(batch)
        elif batch.total >= self.config.max_batch:
            self._close(batch)
            self._spawn_flush(batch)
        # The batch is an internal coalescing handle, not a data egress:
        # its dataset only leaves through release_many in _execute.
        return batch  # dplint: disable=DPL007 -- internal handle, no egress

    async def _flush_after(self, batch: _Batch) -> None:
        """Window timer: flush the batch when its window elapses."""
        await self.clock.sleep(self.config.flush_window)
        if batch.closed:
            return
        self._close(batch)
        await self._execute(batch)

    def _close(self, batch: _Batch) -> None:
        """Seal a batch: no more riders, window timer disarmed."""
        batch.closed = True
        self._open.pop(batch.key, None)
        timer = batch.timer
        if timer is not None and not timer.done() and timer is not asyncio.current_task():
            timer.cancel()

    def _spawn_flush(self, batch: _Batch) -> None:
        """Run a sealed batch's flush as a tracked background task."""
        batch.closed = True
        task = asyncio.ensure_future(self._execute(batch))
        self._inflight.add(task)
        task.add_done_callback(self._inflight.discard)

    async def _execute(self, batch: _Batch) -> None:
        """Flush one sealed batch: release, split, deliver (or roll back).

        Attempt 0 draws from the tenant's persistent stream; retry ``k``
        re-derives a fresh generator from ``reseed`` so a failing batch
        never replays the exact draw that failed, yet stays reproducible.
        After the retry budget, every rider's reservation is refunded and
        its future fails — a batch failure is loud, never a silent drop.
        """
        requests = [r for r in batch.requests if not r.abandoned]
        if not requests:
            return
        total = sum(request.n for request in requests)
        tracer = _trace.current()
        attempt = 0
        while True:
            if attempt == 0:
                rng = batch.tenant.rng
            else:
                rng = check_random_state(
                    reseed(
                        derive_seed(
                            "serving.retry", batch.tenant.tenant_id,
                            batch.index, base_seed=batch.tenant.seed,
                        ),
                        attempt,
                    )
                )
            try:
                outputs = batch.mechanism.release_many(
                    batch.dataset, total, random_state=rng
                )
            except Exception as error:
                # Any failure — including a ValidationError from the
                # mechanism — must resolve the riders' futures: a flush
                # that re-raised out of its task would leave every
                # submitter suspended forever with its charge kept.
                attempt += 1
                if attempt <= self.config.max_retries:
                    if tracer is not None:
                        tracer.count("serving.retries")
                    continue
                self._fail_batch(batch, requests, attempt, error)
                return
            break
        if tracer is not None:
            tracer.count("serving.flushes")
            tracer.count("serving.released", total)
            tracer.observe("serving.batch_size", total)
            if len(requests) > 1:
                tracer.count("serving.coalesced", len(requests))
        offset = 0
        for request in requests:
            piece = list(outputs[offset:offset + request.n])
            offset += request.n
            if request.future.done():
                # The caller timed out while we were executing: the
                # release happened, so the charge stands; only the
                # delivery is dropped.
                if tracer is not None:
                    tracer.count("serving.dropped_outputs", request.n)
            else:
                request.future.set_result(piece)

    def _fail_batch(self, batch, requests, attempts, error) -> None:
        """Roll back a batch that exhausted its retry budget."""
        tracer = _trace.current()
        for request in requests:
            # Nothing was delivered and the batch as a whole failed:
            # the reservation rolls back (emitting a refund event).
            batch.tenant.accountant.refund(request.cost, label=request.label)
            if tracer is not None:
                tracer.count("serving.batch_failures")
        failure = ServingError(
            f"batch flush failed after {attempts} attempt(s): {error}"
        )
        failure.__cause__ = error
        for request in requests:
            if not request.future.done():
                request.future.set_exception(failure)

    async def drain(self) -> None:
        """Graceful shutdown: flush everything queued, then wait it out.

        New submissions are refused from the moment drain starts; open
        batches flush immediately (their windows are cut short) and the
        call returns once every in-flight flush has completed.
        """
        self._closed = True
        for batch in list(self._open.values()):
            self._close(batch)
            self._spawn_flush(batch)
        while self._inflight:
            await asyncio.gather(*list(self._inflight), return_exceptions=True)

    async def abort(self) -> None:
        """Hard shutdown: refund and fail everything still queued.

        Queued (never-executed) requests are provably unreleased, so
        their reservations roll back and their futures fail with
        :class:`~repro.exceptions.ServiceClosedError`. Flushes already
        executing are allowed to finish — their releases happened.
        """
        self._closed = True
        tracer = _trace.current()
        for batch in list(self._open.values()):
            self._close(batch)
            for request in batch.requests:
                if request.abandoned:
                    continue
                batch.tenant.accountant.refund(request.cost, label=request.label)
                if tracer is not None:
                    tracer.count("serving.aborted")
                if not request.future.done():
                    request.future.set_exception(
                        ServiceClosedError("service aborted before flush")
                    )
                request.abandoned = True
        while self._inflight:
            await asyncio.gather(*list(self._inflight), return_exceptions=True)
