"""Clocks for the serving layer: real time, and deterministic virtual time.

Every time-dependent decision the service makes — flush windows, request
timeouts, latency measurements — goes through a :class:`Clock` so the same
service code runs in two modes:

* :class:`SystemClock` binds to the running asyncio event loop's monotonic
  time for real deployments;
* :class:`SimulatedClock` owns a virtual timeline: ``sleep`` registers a
  deadline in a heap and time only moves when the driver advances it to
  the next deadline, after the event loop has *quiesced* (no task made
  progress over several consecutive zero-sleeps). A fleet of thousands of
  simulated clients therefore runs in milliseconds of wall time, in an
  order fully determined by the (seeded) workload — the property the
  load-test harness's bit-identical reports rest on.

No wall-clock reads happen anywhere in the simulated path, so two runs of
the same workload interleave identically on any machine.
"""

from __future__ import annotations

import asyncio
import heapq
import time

from repro.exceptions import ServingError, ServingTimeoutError

__all__ = ["Clock", "SimulatedClock", "SystemClock"]

#: Fallback quiescence margin: consecutive no-progress event-loop passes
#: required to call the loop settled when the loop's ready queue cannot be
#: inspected directly. Each pass runs every currently-ready callback; a
#: resolved future wakes its waiter on the *next* pass, so the margin must
#: exceed the longest await chain between clock events.
_QUIESCE_STABLE_PASSES = 25


class Clock:
    """Time source interface used by the serving layer.

    Subclasses provide ``now()`` (monotonic seconds) and ``sleep()``;
    :meth:`wait_for` is implemented once on top of ``sleep`` so timeouts
    follow the same timeline as every other delay — real or simulated.
    """

    def now(self) -> float:
        """Current monotonic time in seconds."""
        raise NotImplementedError

    async def sleep(self, seconds: float) -> None:
        """Suspend the calling coroutine for ``seconds`` of clock time.

        Parameters
        ----------
        seconds:
            Non-negative delay; 0 yields once to the event loop.
        """
        raise NotImplementedError

    async def wait_for(self, future: asyncio.Future, timeout: float | None):
        """Await ``future``, bounded by ``timeout`` seconds of clock time.

        Races the future against :meth:`sleep`. On expiry the future is
        left *pending* (not cancelled) and
        :class:`~repro.exceptions.ServingTimeoutError` is raised — the
        caller owns the rollback decision, because only it knows whether
        the underlying work already started.

        Parameters
        ----------
        future:
            The awaitable result being bounded.
        timeout:
            Clock seconds to wait; ``None`` waits forever.
        """
        if timeout is None:
            return await future
        timer = asyncio.ensure_future(self.sleep(timeout))
        try:
            await asyncio.wait(
                {future, timer}, return_when=asyncio.FIRST_COMPLETED
            )
        finally:
            if not timer.done():
                timer.cancel()
        if future.done():
            return future.result()
        raise ServingTimeoutError(
            f"request did not complete within {timeout:g}s"
        )


class SystemClock(Clock):
    """Real time: the running event loop's monotonic clock."""

    def now(self) -> float:
        """Monotonic wall time (valid inside or outside an event loop)."""
        return time.monotonic()

    async def sleep(self, seconds: float) -> None:
        """Delegate to :func:`asyncio.sleep`.

        Parameters
        ----------
        seconds:
            Non-negative delay in real seconds.
        """
        await asyncio.sleep(max(0.0, seconds))


class SimulatedClock(Clock):
    """Deterministic virtual time driven by a deadline heap.

    ``sleep`` never blocks on real time: it files a ``(deadline, seq,
    future)`` entry and suspends until the driver advances the clock to
    that deadline. ``seq`` breaks deadline ties in registration order, so
    wake order is a pure function of the workload.

    Use :meth:`run` to execute a coroutine to completion under this
    clock; it owns the advance loop (quiesce, then jump to the next
    deadline) and raises :class:`~repro.exceptions.ServingError` on a
    deadlock — tasks still pending with no timer left to fire.
    """

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)
        self._heap: list[tuple[float, int, asyncio.Future]] = []
        self._seq = 0
        self._activity = 0

    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    async def sleep(self, seconds: float) -> None:
        """Suspend until the driver advances past ``now() + seconds``.

        Parameters
        ----------
        seconds:
            Non-negative virtual delay; 0 yields once without filing a
            deadline.
        """
        self._activity += 1
        if seconds <= 0:
            await asyncio.sleep(0)
            return
        future = asyncio.get_running_loop().create_future()
        heapq.heappush(self._heap, (self._now + float(seconds), self._seq, future))
        self._seq += 1
        await future

    def advance_to_next(self) -> float:
        """Jump to the earliest pending deadline and wake its sleepers.

        All entries sharing the earliest deadline resolve in registration
        order. Entries whose futures were cancelled (abandoned timeouts)
        are discarded without waking anyone.
        """
        while self._heap:
            deadline, _, future = heapq.heappop(self._heap)
            if future.cancelled():
                continue
            self._now = max(self._now, deadline)
            future.set_result(None)
            self._activity += 1
            while self._heap and self._heap[0][0] <= self._now:
                _, _, later = heapq.heappop(self._heap)
                if not later.cancelled():
                    later.set_result(None)
                    self._activity += 1
            return self._now
        raise ServingError("no pending deadline to advance to")

    async def _quiesce(self) -> None:
        """Yield until every runnable task has run out of work.

        The exact signal is the event loop's ready queue: when the
        driver wakes from a zero-sleep and nothing else is queued, every
        other task is suspended on a future (a clock deadline or a peer),
        so only advancing time can create progress. The queue attribute
        is CPython's ``_ready``; on loops without it, fall back to
        counting clock-activity-stable passes with a generous margin.
        """
        ready = getattr(asyncio.get_running_loop(), "_ready", None)
        if ready is not None:
            while True:
                await asyncio.sleep(0)
                if not ready:
                    return
        stable = 0
        while stable < _QUIESCE_STABLE_PASSES:
            before = self._activity
            await asyncio.sleep(0)
            stable = stable + 1 if self._activity == before else 0

    def run(self, coroutine):
        """Execute ``coroutine`` to completion under this clock.

        Alternates quiescing the event loop with advancing the clock to
        the next deadline until the coroutine finishes. A pending
        coroutine with an empty deadline heap is a deadlock and raises
        :class:`~repro.exceptions.ServingError` rather than hanging.

        Parameters
        ----------
        coroutine:
            The workload to drive (e.g. a load-test fleet).
        """

        async def _drive():
            task = asyncio.ensure_future(coroutine)
            while True:
                await self._quiesce()
                if task.done():
                    return task.result()
                if not any(not f.cancelled() for _, _, f in self._heap):
                    task.cancel()
                    raise ServingError(
                        "simulated-clock deadlock: tasks pending but no "
                        "timer is scheduled to wake them"
                    )
                self.advance_to_next()

        return asyncio.run(_drive())
