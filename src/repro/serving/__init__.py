"""Serving: a concurrent, budget-enforcing front door over the library.

PINQ's lesson — privacy must be enforced at the *platform* boundary, not
promised by call sites — applied to this reproduction: every release
request passes one :class:`~repro.serving.service.ReleaseService` that
charges a per-tenant sharded accountant before anything runs, coalesces
concurrent same-key requests into single ``release_many`` batches (kept
invisible by the mechanisms' stream-equivalence contract), and wraps
execution in timeouts, deterministic-reseed retries, and graceful drain.

Time is pluggable (:mod:`repro.serving.clock`): real deployments use the
event loop's clock, while the load-test harness
(:mod:`repro.serving.loadtest`) drives thousands of simulated clients on
a virtual timeline and emits bit-reproducible ``LOADTEST_<id>.json``
reports. Entry points: ``repro serve`` (live demo) and
``repro loadtest`` (deterministic harness). See ``docs/SERVING.md``.
"""

from repro.serving.clock import Clock, SimulatedClock, SystemClock
from repro.serving.loadtest import (
    LOADTEST_SCHEMA_VERSION,
    LoadTestSpec,
    deterministic_view,
    measure_speedup,
    run_loadtest,
    validate_report,
    write_report,
)
from repro.serving.service import ReleaseService, ServiceConfig
from repro.serving.tenants import ShardedAccountant, Tenant, TenantRegistry

__all__ = [
    "Clock",
    "LOADTEST_SCHEMA_VERSION",
    "LoadTestSpec",
    "ReleaseService",
    "ServiceConfig",
    "ShardedAccountant",
    "SimulatedClock",
    "SystemClock",
    "Tenant",
    "TenantRegistry",
    "deterministic_view",
    "measure_speedup",
    "run_loadtest",
    "validate_report",
    "write_report",
]
