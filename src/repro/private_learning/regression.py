"""Differentially-private regression — the paper's announced next step.

Section 5: "We are currently investigating differentially-private
regression … using PAC-Bayesian bounds." Two routes implemented:

* :class:`GibbsRidgeRegression` — exactly the paper's program: the Gibbs
  estimator over a finite grid of coefficient vectors with a *truncated*
  squared loss (bounded loss ⇒ Theorem 4.1 privacy, PAC-Bayes
  certificates for free);
* :class:`SufficientStatisticsRidge` — the classical specialized
  comparator: perturb the sufficient statistics ``XᵀX`` and ``Xᵀy`` with
  Laplace noise and solve the noisy normal equations.

Standing assumptions (checked): ‖x‖₂ ≤ 1 and |y| ≤ y_bound.
"""

from __future__ import annotations

import numpy as np

from repro.core.gibbs import GibbsEstimator
from repro.distributions.continuous import LaplaceNoise
from repro.exceptions import NotFittedError, ValidationError
from repro.learning.erm import PredictorGrid
from repro.mechanisms.base import Mechanism, PrivacySpec
from repro.utils.validation import check_array, check_positive, check_random_state


def _check_regression_data(x, y, y_bound: float):
    x = check_array(x, name="x", ndim=2)
    y = check_array(y, name="y", ndim=1)
    if y.shape[0] != x.shape[0]:
        raise ValidationError("x and y must have the same number of rows")
    if np.any(np.linalg.norm(x, axis=1) > 1.0 + 1e-9):
        raise ValidationError("private regression requires ‖x‖₂ ≤ 1")
    if np.any(np.abs(y) > y_bound + 1e-9):
        raise ValidationError(f"targets must satisfy |y| ≤ {y_bound}")
    return x, y


def coefficient_grid(
    dimension: int, radius: float, points_per_axis: int
) -> list[tuple]:
    """A deterministic lattice of candidate coefficient vectors.

    Cartesian grid on ``[-radius, radius]^d`` — fine for the small d the
    Gibbs route targets; the lattice size grows as
    ``points_per_axis**dimension``.

    Parameters
    ----------
    dimension:
        Number of features d.
    radius:
        Half-width of the lattice along each axis.
    points_per_axis:
        Lattice resolution per axis.
    """
    if dimension < 1:
        raise ValidationError("dimension must be >= 1")
    if points_per_axis < 2:
        raise ValidationError("points_per_axis must be >= 2")
    radius = check_positive(radius, name="radius")
    axis = np.linspace(-radius, radius, points_per_axis)
    mesh = np.meshgrid(*([axis] * dimension), indexing="ij")
    stacked = np.stack([m.ravel() for m in mesh], axis=1)
    return [tuple(row) for row in stacked]


class GibbsRidgeRegression(Mechanism):
    """ε-DP regression via the Gibbs estimator over a coefficient lattice.

    The squared loss ``(⟨θ, x⟩ - y)²`` is clipped at ``loss_ceiling`` so
    the empirical risk has sensitivity ``loss_ceiling / n`` and
    Theorem 4.1 applies with temperature ``λ = ε·n / (2·loss_ceiling)``.

    Parameters
    ----------
    dimension:
        Number of features d.
    epsilon:
        Privacy parameter.
    sample_size:
        The n the temperature is calibrated for.
    radius / points_per_axis:
        Extent and resolution of the coefficient lattice.
    loss_ceiling:
        Truncation level of the squared loss (also the loss range).
    """

    def __init__(
        self,
        dimension: int,
        epsilon: float,
        sample_size: int,
        *,
        radius: float = 2.0,
        points_per_axis: int = 9,
        loss_ceiling: float = 4.0,
    ) -> None:
        super().__init__(PrivacySpec(epsilon=epsilon))
        self.loss_ceiling = check_positive(loss_ceiling, name="loss_ceiling")
        thetas = coefficient_grid(dimension, radius, points_per_axis)

        def loss(theta, z):
            x, y = z
            residual = float(np.asarray(theta) @ np.asarray(x)) - float(y)
            return min(residual * residual, self.loss_ceiling)

        grid = PredictorGrid(thetas, loss, loss_bounds=(0.0, self.loss_ceiling))
        self.estimator = GibbsEstimator.from_privacy(
            grid, epsilon, sample_size
        )
        self.coefficients: np.ndarray | None = None

    @property
    def temperature(self) -> float:
        """Gibbs temperature β the privacy calibration produced."""
        return self.estimator.temperature

    @staticmethod
    def _as_sample(x: np.ndarray, y: np.ndarray) -> list:
        return [(tuple(x[i]), float(y[i])) for i in range(x.shape[0])]

    def release(self, dataset, random_state=None) -> np.ndarray:
        """``dataset`` is a pair ``(x, y)``; returns the sampled θ."""
        x, y = dataset
        return self.fit(x, y, random_state=random_state).coefficients

    def fit(self, x, y, random_state=None) -> "GibbsRidgeRegression":
        """Sample one coefficient vector from the Gibbs posterior."""
        x, y = _check_regression_data(x, y, y_bound=np.inf)
        rng = check_random_state(random_state)
        theta = self.estimator.release(
            self._as_sample(x, y), random_state=rng
        )
        self.coefficients = np.asarray(theta, dtype=float)
        return self

    def output_distribution(self, x, y):
        """Exact Gibbs posterior over the lattice (for audits/utility)."""
        x, y = _check_regression_data(x, y, y_bound=np.inf)
        return self.estimator.output_distribution(self._as_sample(x, y))

    def predict(self, x) -> np.ndarray:
        """Predicted targets ``x @ θ``."""
        if self.coefficients is None:
            raise NotFittedError("GibbsRidgeRegression has not been fitted")
        return check_array(x, name="x", ndim=2) @ self.coefficients

    def mean_squared_error(self, x, y) -> float:
        """Mean squared prediction error on (x, y)."""
        y = check_array(y, name="y", ndim=1)
        residuals = self.predict(x) - y
        return float((residuals**2).mean())


class SufficientStatisticsRidge(Mechanism):
    """ε-DP ridge regression via perturbed sufficient statistics.

    Releases noisy versions of ``XᵀX`` (upper triangle) and ``Xᵀy`` with
    i.i.d. Laplace noise scaled to the joint L1 sensitivity, then solves
    the (PSD-projected) noisy normal equations. One record with ‖x‖ ≤ 1
    and |y| ≤ y_bound contributes at most ``d + √d·y_bound`` in L1 to the
    statistics, so a substitution moves them by at most twice that.

    Parameters
    ----------
    dimension:
        Number of features d.
    epsilon:
        Privacy parameter.
    regularization:
        Ridge parameter added after the PSD projection.
    y_bound:
        Assumed bound on |y| per record (enters the sensitivity).
    """

    def __init__(
        self,
        dimension: int,
        epsilon: float,
        *,
        regularization: float = 1e-2,
        y_bound: float = 1.0,
    ) -> None:
        super().__init__(PrivacySpec(epsilon=epsilon))
        if dimension < 1:
            raise ValidationError("dimension must be >= 1")
        self.dimension = int(dimension)
        self.regularization = check_positive(regularization, name="regularization")
        self.y_bound = check_positive(y_bound, name="y_bound")
        d = float(dimension)
        self.statistics_sensitivity = 2.0 * (d + np.sqrt(d) * self.y_bound)
        self.coefficients: np.ndarray | None = None

    def release(self, dataset, random_state=None) -> np.ndarray:
        """``dataset`` is a pair ``(x, y)``; returns the private θ."""
        x, y = dataset
        return self.fit(x, y, random_state=random_state).coefficients

    def fit(self, x, y, random_state=None) -> "SufficientStatisticsRidge":
        """Perturb XᵀX and Xᵀy, PSD-project, solve ridge normal equations."""
        x, y = _check_regression_data(x, y, self.y_bound)
        if x.shape[1] != self.dimension:
            raise ValidationError(
                f"expected {self.dimension} features, got {x.shape[1]}"
            )
        rng = check_random_state(random_state)
        n, d = x.shape

        noise = LaplaceNoise(scale=self.statistics_sensitivity / self.epsilon)
        gram = x.T @ x
        # Perturb the upper triangle once and mirror, keeping symmetry.
        upper = np.triu_indices(d)
        noisy_gram = gram.copy()
        noisy_gram[upper] += noise.sample(size=len(upper[0]), random_state=rng)
        noisy_gram = np.triu(noisy_gram) + np.triu(noisy_gram, 1).T
        noisy_cross = x.T @ y + noise.sample(size=d, random_state=rng)

        # PSD projection: clip negative eigenvalues so the ridge system is
        # well posed even when noise swamps the spectrum.
        eigenvalues, eigenvectors = np.linalg.eigh(noisy_gram)
        eigenvalues = np.clip(eigenvalues, 0.0, None)
        psd_gram = (eigenvectors * eigenvalues) @ eigenvectors.T

        system = psd_gram / n + self.regularization * np.eye(d)
        self.coefficients = np.linalg.solve(system, noisy_cross / n)
        return self

    def predict(self, x) -> np.ndarray:
        """Predicted targets ``x @ θ``."""
        if self.coefficients is None:
            raise NotFittedError(
                "SufficientStatisticsRidge has not been fitted"
            )
        return check_array(x, name="x", ndim=2) @ self.coefficients

    def mean_squared_error(self, x, y) -> float:
        """Mean squared prediction error on (x, y)."""
        y = check_array(y, name="y", ndim=1)
        residuals = self.predict(x) - y
        return float((residuals**2).mean())
