"""Differentially-private learners.

The generic route the paper advocates — the Gibbs estimator / exponential
mechanism over a predictor space — next to the specialized private-ERM
algorithms of Chaudhuri, Monteleoni & Sarwate that the paper cites as
motivation (refs 5, 6): output perturbation and objective perturbation for
L2-regularized linear classifiers.
"""

from repro.private_learning.perturbation import (
    ObjectivePerturbationClassifier,
    OutputPerturbationClassifier,
    erm_argmin_sensitivity,
)
from repro.private_learning.exponential_learner import (
    ExponentialMechanismLearner,
    direction_grid,
)
from repro.private_learning.langevin import (
    GibbsERMClassifier,
    RegularizedExponentialMechanism,
)
from repro.private_learning.regression import (
    GibbsRidgeRegression,
    SufficientStatisticsRidge,
    coefficient_grid,
)
from repro.private_learning.density import (
    GibbsDensityEstimator,
    LaplaceHistogramDensity,
    beta_shape_family,
    discretize_density,
)

__all__ = [
    "ExponentialMechanismLearner",
    "GibbsDensityEstimator",
    "GibbsERMClassifier",
    "GibbsRidgeRegression",
    "LaplaceHistogramDensity",
    "ObjectivePerturbationClassifier",
    "OutputPerturbationClassifier",
    "RegularizedExponentialMechanism",
    "SufficientStatisticsRidge",
    "beta_shape_family",
    "coefficient_grid",
    "direction_grid",
    "discretize_density",
    "erm_argmin_sensitivity",
]
