"""Regularized exponential mechanism for private convex ERM in ``R^d``.

The grid learner (:mod:`repro.private_learning.exponential_learner`) pays a
discretization floor that grows exponentially in the dimension; this module
realizes the exponential mechanism *directly over* ``R^d`` following
Gopi–Lee–Liu (*Private Convex Optimization via Exponential Mechanism*):
sample

    θ  ∝  exp(-λ · (R̂(θ) + (Λ/2)·‖θ‖²))

where ``R̂`` is the empirical risk of a **bounded** margin loss and the
L2 regularizer acts as a data-independent Gaussian-like prior. With loss
range ``C`` the empirical risk has global sensitivity ``C/n``, so by
Theorem 4.1 of the paper the draw is ε-DP at temperature
``λ = ε·n/(2C)`` — over all of ``R^d``, no grid required.

Sampling uses :class:`repro.distributions.sampling.BatchedLangevinSampler`:
the log-density is ``λ``-strongly log-concave (the regularizer survives
truncation untouched), exactly the regime where MALA mixes fast. Batches
of releases advance all chains in lock-step as numpy array operations,
preserving the ``release_many`` stream-equivalence contract bit for bit.

As with :class:`repro.core.gibbs.ContinuousGibbsPosterior`, the stated ε
is exact for the target density; a finite chain is an approximation whose
bias shrinks with ``steps`` (see docs/SAMPLING.md for the argument sketch
and step-size guidance).
"""

from __future__ import annotations

import numpy as np

from repro.distributions.sampling import BatchedLangevinSampler, LangevinResult
from repro.exceptions import ValidationError
from repro.learning.losses import MarginLoss
from repro.learning.models import _check_classification_data
from repro.mechanisms.base import Mechanism, PrivacySpec
from repro.mechanisms.sensitivity import empirical_risk_sensitivity
from repro.utils.validation import check_positive, check_random_state


class RegularizedExponentialMechanism(Mechanism):
    """ε-DP regularized ERM by sampling the Gibbs posterior over ``R^d``.

    ``release`` draws one θ from ``exp(-λ(R̂(θ) + (Λ/2)‖θ‖²))`` with the
    temperature λ calibrated per-dataset to ``ε·n/(2C)`` (Theorem 4.1,
    loss range ``C``); ``release_many`` draws a whole batch of chains in
    lock-step and stays bit-identical to sequential releases.

    Parameters
    ----------
    loss:
        A **bounded** :class:`~repro.learning.losses.MarginLoss` — wrap an
        unbounded loss in :class:`~repro.learning.losses.TruncatedLoss`.
        Boundedness is what caps the risk sensitivity at ``C/n`` and makes
        the mechanism private over the whole of ``R^d``.
    regularization:
        L2 parameter Λ > 0; the strong-convexity modulus of the target's
        negative log-density (per unit temperature), which both the
        privacy-utility trade-off and the sampler's mixing lean on.
    epsilon:
        Privacy parameter.
    steps:
        MALA steps per chain (doubles as burn-in; only final states are
        released).
    step_size:
        Optional Langevin step ``h``; when omitted a per-dataset heuristic
        targets the ~0.5–0.6 acceptance band (see docs/SAMPLING.md).
    """

    def __init__(
        self,
        loss: MarginLoss,
        regularization: float,
        epsilon: float,
        *,
        steps: int = 120,
        step_size: float | None = None,
    ) -> None:
        super().__init__(PrivacySpec(epsilon=epsilon))
        if not isinstance(loss, MarginLoss):
            raise ValidationError("loss must be a MarginLoss")
        bounds = loss.bounds()
        if bounds is None:
            raise ValidationError(
                "the regularized exponential mechanism requires a bounded "
                "loss (finite risk sensitivity); wrap the loss in "
                "TruncatedLoss to bound it"
            )
        self.loss = loss
        self.loss_range = check_positive(
            float(bounds[1] - bounds[0]), name="loss range"
        )
        self.regularization = check_positive(
            regularization, name="regularization"
        )
        if steps < 1:
            raise ValidationError("steps must be >= 1")
        self.steps = int(steps)
        self.step_size = (
            None
            if step_size is None
            else check_positive(step_size, name="step_size")
        )
        self.last_acceptance_rate: float | None = None
        # Internal sabotage knob for the statistical audit registry: the
        # effective temperature is multiplied by this factor, so values
        # > 1 deliberately overshoot the ε the mechanism claims.
        self._temperature_scale = 1.0

    def temperature_for(self, n: int) -> float:
        """The calibrated temperature ``λ = ε·n/(2C)`` for sample size n."""
        return self.epsilon / (
            2.0 * empirical_risk_sensitivity(self.loss_range, n)
        )

    def _default_step_size(self, temperature: float, dimension: int) -> float:
        """Heuristic ``h``: posterior scale times the MALA ``d^{-1/6}`` law.

        The target is ``λΛ``-strongly log-concave with smoothness at most
        ``λ(Λ + 1/4)`` for the margin losses in this package, so its
        tightest direction has scale ``(λ(Λ + 1/4))^{-1/2}``; optimal-
        scaling theory then shrinks the step like ``d^{-1/6}``. The
        leading constant is tuned empirically (the curvature bound is
        loose away from the decision boundary) to land acceptance in the
        ~0.4–0.8 band across the E17 grid.
        """
        scale = (temperature * (self.regularization + 0.25)) ** -0.5
        return 3.0 * scale * float(dimension) ** (-1.0 / 6.0)

    def _posterior_sampler(self, x, y) -> BatchedLangevinSampler:
        """Build the batched MALA sampler targeting this dataset's posterior.

        The returned sampler's closures map ``(m, d)`` states row-wise
        (``einsum`` contractions only — no BLAS matmul — so row ``i`` of a
        batch is bit-identical to a one-chain evaluation).
        """
        x, y = _check_classification_data(x, y)
        norms = np.linalg.norm(x, axis=1)
        if np.any(norms > 1.0 + 1e-9):
            raise ValidationError(
                "the regularized exponential mechanism requires feature "
                "vectors with ‖x‖₂ ≤ 1"
            )
        n, d = x.shape
        temperature = self.temperature_for(n) * self._temperature_scale
        z = y[:, None] * x
        loss = self.loss
        regularization = self.regularization

        def log_density(theta: np.ndarray) -> np.ndarray:
            margins = np.einsum("md,nd->mn", theta, z)
            risks = loss.value(margins).mean(axis=1)
            squared_norms = (theta * theta).sum(axis=1)
            return -temperature * (
                risks + 0.5 * regularization * squared_norms
            )

        def grad_log_density(theta: np.ndarray) -> np.ndarray:
            margins = np.einsum("md,nd->mn", theta, z)
            weights = loss.derivative(margins)
            risk_grad = np.einsum("mn,nd->md", weights, z) / n
            return -temperature * (risk_grad + regularization * theta)

        step_size = (
            self._default_step_size(temperature, d)
            if self.step_size is None
            else self.step_size
        )
        return BatchedLangevinSampler(
            log_density, grad_log_density, d, step_size=step_size
        )

    def _sample_posterior(self, dataset, n_chains, rng) -> LangevinResult:
        """Run ``n_chains`` chains from the origin and keep diagnostics."""
        x, y = dataset
        sampler = self._posterior_sampler(x, y)
        result = sampler.run(
            n_chains, steps=self.steps, random_state=rng
        )
        self.last_acceptance_rate = result.acceptance_rate
        return result

    def release(self, dataset, random_state=None) -> np.ndarray:
        """``dataset`` is a pair ``(x, y)``; returns one sampled θ."""
        rng = check_random_state(random_state)
        return self._sample_posterior(dataset, 1, rng).samples[0]

    def _release_many(self, dataset, n, rng) -> np.ndarray:
        """Batch kernel: ``n`` chains advanced in lock-step, one per draw."""
        return self._sample_posterior(dataset, n, rng).samples


class GibbsERMClassifier(RegularizedExponentialMechanism):
    """ε-DP linear classifier — drop-in peer of the perturbation baselines.

    Same ``(loss, regularization, epsilon)`` constructor and
    ``fit``/``predict``/``accuracy``/``coefficients`` surface as
    :class:`~repro.private_learning.perturbation.OutputPerturbationClassifier`
    and
    :class:`~repro.private_learning.perturbation.ObjectivePerturbationClassifier`,
    but the private θ is a draw from the regularized exponential mechanism
    rather than a perturbed optimum. Experiment E17 compares the three
    across (ε, n, d). Construction is inherited unchanged; ``fit`` sets
    ``coefficients`` (``None`` until then).
    """

    coefficients: np.ndarray | None = None

    def fit(self, x, y, random_state=None) -> "GibbsERMClassifier":
        """Sample one θ from the regularized Gibbs posterior of (x, y)."""
        rng = check_random_state(random_state)
        self.coefficients = self._sample_posterior((x, y), 1, rng).samples[0]
        return self

    def predict(self, x) -> np.ndarray:
        """Predicted labels in {-1, +1}."""
        if self.coefficients is None:
            raise ValidationError("classifier has not been fitted")
        x = np.asarray(x, dtype=float)
        return np.where(x @ self.coefficients >= 0, 1, -1)

    def accuracy(self, x, y) -> float:
        """Fraction of correct predictions on (x, y)."""
        x, y = _check_classification_data(x, y)
        return float((self.predict(x) == y).mean())
