"""Differentially-private density estimation — the paper's other next step.

Section 5: "… and density estimation using PAC-Bayesian bounds." Two
routes over densities on [0, 1]:

* :class:`GibbsDensityEstimator` — the PAC-Bayes program: a finite family
  of candidate densities (discretized into bins), the *truncated negative
  log-likelihood* as the bounded loss, and the Gibbs estimator on top —
  Theorem 4.1 gives the privacy, Lemma 3.2 the bound-optimality;
* :class:`LaplaceHistogramDensity` — the classical comparator: Laplace
  noise on histogram counts (sensitivity 2 under substitution), clip and
  renormalize.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.core.gibbs import GibbsEstimator
from repro.distributions.continuous import LaplaceNoise
from repro.exceptions import NotFittedError, ValidationError
from repro.learning.erm import PredictorGrid
from repro.mechanisms.base import Mechanism, PrivacySpec
from repro.utils.validation import check_positive, check_random_state


def _check_unit_interval(data) -> np.ndarray:
    arr = np.asarray(data, dtype=float)
    if arr.ndim != 1 or arr.size == 0:
        raise ValidationError("data must be a nonempty 1-D array")
    if np.any((arr < 0) | (arr > 1)):
        raise ValidationError("data must lie in [0, 1]")
    return arr


def _bin_index(values: np.ndarray, bins: int) -> np.ndarray:
    return np.clip((values * bins).astype(int), 0, bins - 1)


def beta_shape_family(bins: int, shapes: Sequence[tuple[float, float]]) -> list:
    """Candidate densities: Beta(a, b) shapes discretized to ``bins`` bins.

    Each candidate is a tuple of bin probabilities (summing to 1), floored
    away from zero so the log-likelihood stays finite.

    Parameters
    ----------
    bins:
        Histogram resolution of each candidate.
    shapes:
        Beta (a, b) parameter pairs, one candidate per pair.
    """
    if bins < 2:
        raise ValidationError("bins must be >= 2")
    edges = np.linspace(0.0, 1.0, bins + 1)
    centers = 0.5 * (edges[:-1] + edges[1:])
    family = []
    for a, b in shapes:
        if a <= 0 or b <= 0:
            raise ValidationError("Beta shape parameters must be > 0")
        weights = centers ** (a - 1) * (1.0 - centers) ** (b - 1)
        weights = np.clip(weights, 1e-6, None)
        family.append(tuple(weights / weights.sum()))
    return family


def default_beta_shapes() -> list[tuple[float, float]]:
    """A 24-member (a, b) grid covering flat, skewed and peaked shapes."""
    values = [0.5, 1.0, 2.0, 4.0, 8.0]
    shapes = [(a, b) for a in values for b in values if (a, b) != (0.5, 0.5)]
    return shapes


class GibbsDensityEstimator(Mechanism):
    """ε-DP density estimation via the Gibbs estimator over a family.

    Loss of candidate f on observation z: ``min(-log f̂(bin(z)),
    loss_ceiling)`` where f̂ is the candidate's bin probability — bounded,
    so the Gibbs machinery applies verbatim.

    Parameters
    ----------
    epsilon, sample_size:
        Privacy target and the n it is calibrated for.
    bins:
        Histogram resolution of the candidate densities.
    shapes:
        Beta (a, b) parameters of the candidate family (default: a 24-grid).
    loss_ceiling:
        Truncation of the negative log-likelihood.
    """

    def __init__(
        self,
        epsilon: float,
        sample_size: int,
        *,
        bins: int = 16,
        shapes: Sequence[tuple[float, float]] | None = None,
        loss_ceiling: float = 8.0,
    ) -> None:
        super().__init__(PrivacySpec(epsilon=epsilon))
        self.bins = int(bins)
        self.loss_ceiling = check_positive(loss_ceiling, name="loss_ceiling")
        if shapes is None:
            shapes = default_beta_shapes()
        self.candidates = beta_shape_family(self.bins, shapes)

        def loss(candidate, z):
            probs = np.asarray(candidate)
            # Density value = bin probability × bins (bin width 1/bins).
            density = probs[_bin_index(np.array([z]), self.bins)[0]] * self.bins
            return float(min(-np.log(max(density, 1e-300)), self.loss_ceiling))

        grid = PredictorGrid(
            self.candidates, loss, loss_bounds=(-np.log(self.bins) - 1e-9, self.loss_ceiling)
        )
        self.estimator = GibbsEstimator.from_privacy(grid, epsilon, sample_size)
        self.bin_probabilities: np.ndarray | None = None

    @property
    def temperature(self) -> float:
        """Gibbs temperature β the privacy calibration produced."""
        return self.estimator.temperature

    def release(self, dataset, random_state=None) -> np.ndarray:
        """Fit and return the sampled candidate's bin probabilities."""
        return self.fit(dataset, random_state=random_state).bin_probabilities

    def fit(self, data, random_state=None) -> "GibbsDensityEstimator":
        """Sample one candidate density from the Gibbs posterior."""
        data = _check_unit_interval(data)
        rng = check_random_state(random_state)
        candidate = self.estimator.release(list(data), random_state=rng)
        self.bin_probabilities = np.asarray(candidate, dtype=float)
        return self

    def output_distribution(self, data):
        """Exact Gibbs posterior over the candidate family."""
        data = _check_unit_interval(data)
        return self.estimator.output_distribution(list(data))

    def pdf(self, points) -> np.ndarray:
        """Estimated density at the given points in [0, 1]."""
        if self.bin_probabilities is None:
            raise NotFittedError("GibbsDensityEstimator has not been fitted")
        points = _check_unit_interval(points)
        return self.bin_probabilities[_bin_index(points, self.bins)] * self.bins

    def total_variation_to(self, bin_probabilities) -> float:
        """TV distance between the fit and a reference binned density."""
        if self.bin_probabilities is None:
            raise NotFittedError("GibbsDensityEstimator has not been fitted")
        reference = np.asarray(bin_probabilities, dtype=float)
        if reference.shape != self.bin_probabilities.shape:
            raise ValidationError("reference has the wrong number of bins")
        return float(0.5 * np.abs(self.bin_probabilities - reference).sum())


class LaplaceHistogramDensity(Mechanism):
    """ε-DP histogram density: Laplace noise on counts, clip, renormalize.

    Substituting one record moves at most two bin counts by one each, so
    the counts vector has L1 sensitivity 2 and per-bin noise
    ``Lap(2/ε)`` suffices.

    Parameters
    ----------
    epsilon:
        Privacy parameter.
    bins:
        Histogram resolution.
    """

    def __init__(self, epsilon: float, *, bins: int = 16) -> None:
        super().__init__(PrivacySpec(epsilon=epsilon))
        if bins < 2:
            raise ValidationError("bins must be >= 2")
        self.bins = int(bins)
        self.noise = LaplaceNoise(scale=2.0 / self.epsilon)
        self.bin_probabilities: np.ndarray | None = None

    def release(self, dataset, random_state=None) -> np.ndarray:
        """Fit and return the renormalized noisy bin probabilities."""
        return self.fit(dataset, random_state=random_state).bin_probabilities

    def fit(self, data, random_state=None) -> "LaplaceHistogramDensity":
        """Noise the histogram counts, clip at zero and renormalize."""
        data = _check_unit_interval(data)
        rng = check_random_state(random_state)
        counts = np.bincount(
            _bin_index(data, self.bins), minlength=self.bins
        ).astype(float)
        noisy = counts + self.noise.sample(size=self.bins, random_state=rng)
        noisy = np.clip(noisy, 0.0, None)
        total = noisy.sum()
        if total <= 0:
            # All mass noised away: fall back to the uniform histogram.
            self.bin_probabilities = np.full(self.bins, 1.0 / self.bins)
        else:
            self.bin_probabilities = noisy / total
        return self

    def pdf(self, points) -> np.ndarray:
        """Estimated density at the given points in [0, 1]."""
        if self.bin_probabilities is None:
            raise NotFittedError("LaplaceHistogramDensity has not been fitted")
        points = _check_unit_interval(points)
        return self.bin_probabilities[_bin_index(points, self.bins)] * self.bins

    def total_variation_to(self, bin_probabilities) -> float:
        """TV distance between the fit and a reference binned density."""
        if self.bin_probabilities is None:
            raise NotFittedError("LaplaceHistogramDensity has not been fitted")
        reference = np.asarray(bin_probabilities, dtype=float)
        if reference.shape != self.bin_probabilities.shape:
            raise ValidationError("reference has the wrong number of bins")
        return float(0.5 * np.abs(self.bin_probabilities - reference).sum())


def discretize_density(pdf, bins: int, *, resolution: int = 1000) -> np.ndarray:
    """Bin probabilities of a reference pdf on [0, 1] (for TV comparisons).

    Parameters
    ----------
    pdf:
        Scalar density function on [0, 1].
    bins:
        Number of equal-width bins.
    resolution:
        Midpoint-rule evaluation points used for the integration.
    """
    if bins < 2:
        raise ValidationError("bins must be >= 2")
    xs = np.linspace(0.0, 1.0, resolution, endpoint=False) + 0.5 / resolution
    values = np.asarray([float(pdf(x)) for x in xs])
    if np.any(values < 0):
        raise ValidationError("pdf must be nonnegative")
    indices = _bin_index(xs, bins)
    masses = np.zeros(bins)
    np.add.at(masses, indices, values)
    total = masses.sum()
    if total <= 0:
        raise ValidationError("pdf integrates to zero on [0, 1]")
    return masses / total
