"""The paper's generic private learner: a Gibbs estimator over a grid.

Where output/objective perturbation are hand-crafted for regularized convex
ERM, the exponential mechanism learns *any* predictor class with a bounded
loss — here, linear classifiers discretized to a finite grid of directions.
The 0-1 loss is fine (no convexity or smoothness needed), which is exactly
the generality claim of Sections 2–3 of the paper. The price is the grid's
discretization floor, visible in Experiment E7.
"""

from __future__ import annotations

import numpy as np

from repro.core.gibbs import GibbsEstimator
from repro.distributions.discrete import DiscreteDistribution
from repro.exceptions import ValidationError
from repro.learning.erm import PredictorGrid
from repro.mechanisms.base import Mechanism, PrivacySpec
from repro.utils.validation import check_random_state


def direction_grid(
    dimension: int, resolution: int, random_state=12345
) -> list[np.ndarray]:
    """Candidate unit-norm linear predictors.

    Parameters
    ----------
    dimension:
        Feature dimension d (>= 2).
    resolution:
        Number of candidate directions.
    random_state:
        Seed or Generator for the d > 2 construction. The fixed default
        keeps the grid deterministic — the grid is public, so this
        randomness carries no privacy budget.

    For d = 2, ``resolution`` equally-spaced directions on the circle; for
    higher d, a low-discrepancy set of unit vectors (Gaussian directions,
    normalized) of size ``resolution``. Degenerate draws — a (near-)zero
    Gaussian row, whose "direction" would be NaN, or an exact repeat of an
    earlier direction, which would silently double that predictor's prior
    mass — are discarded and redrawn, so the returned grid always holds
    ``resolution`` distinct unit vectors; a :class:`ValidationError` is
    raised if the generator cannot supply them (e.g. a stub RNG that only
    ever produces the same row). Healthy generators never hit either
    branch, so existing grids are unchanged.
    """
    if dimension < 2:
        raise ValidationError("dimension must be >= 2")
    if resolution < 2:
        raise ValidationError("resolution must be >= 2")
    if dimension == 2:
        angles = np.linspace(0.0, 2.0 * np.pi, resolution, endpoint=False)
        return [np.array([np.cos(a), np.sin(a)]) for a in angles]
    rng = check_random_state(random_state)
    directions: list[np.ndarray] = []
    seen: set[bytes] = set()
    for _ in range(100 * resolution):
        if len(directions) == resolution:
            break
        row = rng.normal(size=dimension)
        norm = np.linalg.norm(row)
        if norm < 1e-12:
            continue
        unit = row / norm
        key = unit.tobytes()
        if key in seen:
            continue
        seen.add(key)
        directions.append(unit)
    if len(directions) < resolution:
        raise ValidationError(
            f"could not draw {resolution} distinct unit directions in "
            f"dimension {dimension}: the generator keeps producing "
            "degenerate (zero-norm) or duplicate rows"
        )
    return directions


def _zero_one_loss(theta: np.ndarray, z) -> float:
    x, y = z
    margin = float(y) * float(np.asarray(x, dtype=float) @ theta)
    return 1.0 if margin <= 0 else 0.0


class ExponentialMechanismLearner(Mechanism):
    """ε-DP classification via the Gibbs estimator on a direction grid.

    Parameters
    ----------
    dimension:
        Feature dimension.
    epsilon:
        Privacy parameter; the Gibbs temperature is calibrated to it via
        Theorem 4.1 (``λ = ε·n/2`` for the 0-1 loss).
    sample_size:
        The n the temperature is calibrated for (privacy is per-size-n
        sample under substitution neighbours).
    resolution:
        Number of candidate directions — the ablation knob of E7.
    prior:
        Optional prior over the grid (uniform when omitted).
    """

    def __init__(
        self,
        dimension: int,
        epsilon: float,
        sample_size: int,
        *,
        resolution: int = 64,
        prior: DiscreteDistribution | None = None,
    ) -> None:
        super().__init__(PrivacySpec(epsilon=epsilon))
        self.directions = direction_grid(dimension, resolution)
        grid = PredictorGrid(
            [tuple(theta) for theta in self.directions],
            lambda theta, z: _zero_one_loss(np.asarray(theta), z),
            loss_bounds=(0.0, 1.0),
        )
        self.estimator = GibbsEstimator.from_privacy(
            grid, epsilon, sample_size, prior=prior
        )
        self.coefficients: np.ndarray | None = None

    @property
    def resolution(self) -> int:
        """Number of candidate directions in the grid."""
        return len(self.directions)

    @property
    def temperature(self) -> float:
        """The calibrated Gibbs temperature λ = ε·n/2."""
        return self.estimator.temperature

    @staticmethod
    def _as_sample(x, y) -> list:
        x = np.asarray(x, dtype=float)
        y = np.asarray(y)
        if x.ndim != 2 or y.shape != (x.shape[0],):
            raise ValidationError("x must be 2-D with one label per row in y")
        return [(tuple(x[i]), int(y[i])) for i in range(x.shape[0])]

    def release(self, dataset, random_state=None) -> np.ndarray:
        """``dataset`` is a pair ``(x, y)``; returns the sampled direction."""
        x, y = dataset
        return self.fit(x, y, random_state=random_state).coefficients

    def fit(self, x, y, random_state=None) -> "ExponentialMechanismLearner":
        """Sample one direction from the Gibbs posterior of the sample."""
        rng = check_random_state(random_state)
        sample = self._as_sample(x, y)
        theta = self.estimator.release(sample, random_state=rng)
        self.coefficients = np.asarray(theta, dtype=float)
        return self

    def output_distribution(self, x, y) -> DiscreteDistribution:
        """Exact Gibbs posterior over the direction grid for (x, y)."""
        return self.estimator.output_distribution(self._as_sample(x, y))

    def predict(self, x) -> np.ndarray:
        """Predicted labels in {-1, +1}."""
        if self.coefficients is None:
            raise ValidationError("learner has not been fitted")
        x = np.asarray(x, dtype=float)
        return np.where(x @ self.coefficients >= 0, 1, -1)

    def accuracy(self, x, y) -> float:
        """Fraction of correct predictions on (x, y)."""
        x = np.asarray(x, dtype=float)
        y = np.asarray(y)
        return float((self.predict(x) == y).mean())
