"""Chaudhuri–Monteleoni–Sarwate private ERM: output & objective perturbation.

Both algorithms privately learn the L2-regularized linear classifier

    θ* = argmin_θ (1/n) Σ l(yᵢ⟨θ, xᵢ⟩) + (Λ/2)‖θ‖²

under the standing assumptions ‖xᵢ‖₂ ≤ 1 and loss ``l`` convex and
1-Lipschitz (and, for objective perturbation, twice differentiable with
``l'' ≤ curvature_bound``).

* **Output perturbation** (Algorithm 1, JMLR 2011): release
  ``θ* + b`` with ``b ∝ exp(-(n·Λ·ε/2)·‖b‖)``. Privacy follows from the
  argmin's sensitivity ``2/(nΛ)``.
* **Objective perturbation** (Algorithm 2): minimize the *perturbed*
  objective ``J(θ) + ⟨b, θ⟩/n`` with ``b ∝ exp(-(ε'/2)·‖b‖)`` and a
  regularization top-up when ε is small. Typically strictly better utility
  at the same ε — the shape Experiment E7 reproduces.
"""

from __future__ import annotations

import numpy as np

from repro.distributions.continuous import GammaNormVector
from repro.exceptions import ValidationError
from repro.learning.losses import HuberHingeLoss, LogisticLoss, MarginLoss
from repro.learning.models import _LinearClassifier, _check_classification_data
from repro.mechanisms.base import Mechanism, PrivacySpec
from repro.utils.validation import check_positive, check_random_state


def erm_argmin_sensitivity(
    lipschitz: float, regularization: float, n: int
) -> float:
    """L2 sensitivity of the regularized-ERM minimizer: ``2L/(nΛ)``.

    Corollary 8 of Chaudhuri et al. (2011) for ‖x‖ ≤ 1 and an L-Lipschitz
    convex loss under the substitution neighbour relation. The bound is
    ``2L/(nΛ)`` *because* the objective is Λ-strongly convex; as Λ → 0
    the argmin stops being stable and the sensitivity diverges, so
    configurations where the bound is not a finite positive float (an
    underflowing Λ, an infinite L) are rejected rather than silently
    calibrating infinite — i.e. vacuous — noise.

    Parameters
    ----------
    lipschitz:
        Lipschitz constant L of the loss.
    regularization:
        L2 regularization parameter Λ.
    n:
        Sample size.
    """
    lipschitz = check_positive(lipschitz, name="lipschitz")
    regularization = check_positive(regularization, name="regularization")
    if n < 1:
        raise ValidationError("n must be >= 1")
    sensitivity = 2.0 * lipschitz / (n * regularization)
    if not np.isfinite(sensitivity):
        raise ValidationError(
            "ERM argmin sensitivity 2L/(nΛ) is not finite: the objective "
            "must be strongly convex (Λ bounded away from 0) with a "
            "finite Lipschitz constant"
        )
    return sensitivity


def _loss_curvature_bound(loss: MarginLoss) -> float:
    """Upper bound on ``l''`` for the losses objective perturbation accepts."""
    if isinstance(loss, LogisticLoss):
        return 0.25
    if isinstance(loss, HuberHingeLoss):
        return 1.0 / (2.0 * loss.smoothing)
    raise ValidationError(
        "objective perturbation needs a twice-differentiable loss with a "
        "known curvature bound (LogisticLoss or HuberHingeLoss)"
    )


class OutputPerturbationClassifier(Mechanism):
    """ε-DP linear classifier by perturbing the exact ERM solution.

    Parameters
    ----------
    loss:
        A convex, 1-Lipschitz :class:`MarginLoss` (logistic or smoothed
        hinge).
    regularization:
        The L2 parameter Λ > 0 (more regularization → less noise needed).
    epsilon:
        Privacy parameter.
    """

    def __init__(
        self, loss: MarginLoss, regularization: float, epsilon: float
    ) -> None:
        super().__init__(PrivacySpec(epsilon=epsilon))
        if not np.isfinite(loss.lipschitz_constant) or loss.lipschitz_constant > 1:
            raise ValidationError(
                "output perturbation requires a loss with Lipschitz constant <= 1"
            )
        self._base = _LinearClassifier(loss, regularization)
        self.coefficients: np.ndarray | None = None

    @property
    def regularization(self) -> float:
        """The L2 regularization parameter Λ."""
        return self._base.regularization

    def release(self, dataset, random_state=None) -> np.ndarray:
        """``dataset`` is a pair ``(x, y)``; returns the private θ."""
        x, y = dataset
        return self.fit(x, y, random_state=random_state).coefficients

    def fit(self, x, y, random_state=None) -> "OutputPerturbationClassifier":
        """Solve the ERM exactly, then add calibrated Gamma-norm noise."""
        x, y = _check_classification_data(x, y)
        norms = np.linalg.norm(x, axis=1)
        if np.any(norms > 1.0 + 1e-9):
            raise ValidationError(
                "output perturbation requires feature vectors with ‖x‖₂ ≤ 1"
            )
        rng = check_random_state(random_state)
        self._base.fit(x, y, use_newton=True)
        n = x.shape[0]
        sensitivity = erm_argmin_sensitivity(
            self._base.loss.lipschitz_constant, self.regularization, n
        )
        noise = GammaNormVector(
            dimension=x.shape[1], scale=sensitivity / self.epsilon
        )
        self.coefficients = self._base.coefficients + noise.sample(random_state=rng)
        return self

    def predict(self, x) -> np.ndarray:
        """Predicted labels in {-1, +1}."""
        if self.coefficients is None:
            raise ValidationError("classifier has not been fitted")
        x = np.asarray(x, dtype=float)
        return np.where(x @ self.coefficients >= 0, 1, -1)

    def accuracy(self, x, y) -> float:
        """Fraction of correct predictions on (x, y)."""
        x, y = _check_classification_data(x, y)
        return float((self.predict(x) == y).mean())


class ObjectivePerturbationClassifier(Mechanism):
    """ε-DP linear classifier by perturbing the ERM *objective*.

    Algorithm 2 of Chaudhuri et al. (2011). Requires a twice-differentiable
    loss with curvature bound c; when ``ε ≤ 2·log(1 + c/(nΛ))`` the
    regularizer is topped up by Δ so the analysis goes through.

    Parameters
    ----------
    loss:
        A convex, 1-Lipschitz, twice-differentiable :class:`MarginLoss`
        (logistic or smoothed hinge).
    regularization:
        The L2 parameter Λ > 0.
    epsilon:
        Privacy parameter.
    """

    def __init__(
        self, loss: MarginLoss, regularization: float, epsilon: float
    ) -> None:
        super().__init__(PrivacySpec(epsilon=epsilon))
        self.curvature_bound = _loss_curvature_bound(loss)
        if not np.isfinite(loss.lipschitz_constant) or loss.lipschitz_constant > 1:
            raise ValidationError(
                "objective perturbation requires a loss with Lipschitz "
                "constant <= 1"
            )
        self.loss = loss
        self.regularization = check_positive(regularization, name="regularization")
        self.coefficients: np.ndarray | None = None
        self.effective_regularization: float | None = None

    def _calibrate(self, n: int) -> tuple[float, float]:
        """Return ``(epsilon_prime, extra_regularization)`` for this n."""
        slack = 2.0 * np.log(1.0 + self.curvature_bound / (n * self.regularization))
        if self.epsilon > slack:
            return self.epsilon - slack, 0.0
        # Small-ε branch: spend half of ε on the noise and raise Λ so that
        # the multiplicative term fits in the other half.
        extra = self.curvature_bound / (n * (np.exp(self.epsilon / 4.0) - 1.0)) - (
            self.regularization
        )
        return self.epsilon / 2.0, max(extra, 0.0)

    def release(self, dataset, random_state=None) -> np.ndarray:
        """``dataset`` is a pair ``(x, y)``; returns the private θ."""
        x, y = dataset
        return self.fit(x, y, random_state=random_state).coefficients

    def fit(self, x, y, random_state=None) -> "ObjectivePerturbationClassifier":
        """Draw the objective noise, then minimize the perturbed objective."""
        x, y = _check_classification_data(x, y)
        norms = np.linalg.norm(x, axis=1)
        if np.any(norms > 1.0 + 1e-9):
            raise ValidationError(
                "objective perturbation requires feature vectors with ‖x‖₂ ≤ 1"
            )
        rng = check_random_state(random_state)
        n, d = x.shape
        epsilon_prime, extra = self._calibrate(n)
        effective = self.regularization + extra
        self.effective_regularization = effective

        noise = GammaNormVector(dimension=d, scale=2.0 / epsilon_prime)
        b = noise.sample(random_state=rng)

        base = _LinearClassifier(self.loss, effective)

        def objective(theta: np.ndarray) -> float:
            return base.objective(theta, x, y) + float(b @ theta) / n

        def gradient(theta: np.ndarray) -> np.ndarray:
            return base.gradient(theta, x, y) + b / n

        def hessian(theta: np.ndarray) -> np.ndarray:
            return base.hessian(theta, x, y)

        from repro.learning.optimize import newton_method

        result = newton_method(objective, gradient, hessian, np.zeros(d))
        self.coefficients = result.x
        return self

    def predict(self, x) -> np.ndarray:
        """Predicted labels in {-1, +1}."""
        if self.coefficients is None:
            raise ValidationError("classifier has not been fitted")
        x = np.asarray(x, dtype=float)
        return np.where(x @ self.coefficients >= 0, 1, -1)

    def accuracy(self, x, y) -> float:
        """Fraction of correct predictions on (x, y)."""
        x, y = _check_classification_data(x, y)
        return float((self.predict(x) == y).mean())
