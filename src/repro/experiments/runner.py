"""Lightweight experiment runner with parameter sweeps."""

from __future__ import annotations

import itertools
import time
from collections.abc import Callable, Mapping, Sequence
from dataclasses import dataclass, field

from repro.exceptions import ValidationError


@dataclass
class ExperimentResult:
    """One experiment configuration and its measured outputs."""

    name: str
    parameters: dict
    outputs: dict
    seconds: float = 0.0
    metadata: dict = field(default_factory=dict)

    def __str__(self) -> str:
        params = ", ".join(f"{k}={v}" for k, v in self.parameters.items())
        outputs = ", ".join(f"{k}={v}" for k, v in self.outputs.items())
        return f"{self.name}({params}) -> {outputs} [{self.seconds:.3f}s]"


def run_experiment(
    name: str, fn: Callable[..., Mapping], **parameters
) -> ExperimentResult:
    """Run ``fn(**parameters)`` and wrap its dict result with timing."""
    start = time.perf_counter()
    outputs = fn(**parameters)
    elapsed = time.perf_counter() - start
    if not isinstance(outputs, Mapping):
        raise ValidationError("experiment functions must return a mapping")
    return ExperimentResult(
        name=name,
        parameters=dict(parameters),
        outputs=dict(outputs),
        seconds=elapsed,
    )


def sweep(
    name: str,
    fn: Callable[..., Mapping],
    grid: Mapping[str, Sequence],
    **fixed,
) -> list[ExperimentResult]:
    """Run ``fn`` over the Cartesian product of ``grid`` values.

    Parameters
    ----------
    grid:
        Mapping from parameter name to the values to sweep.
    fixed:
        Parameters held constant across the sweep.
    """
    if not grid:
        raise ValidationError("grid must not be empty")
    names = list(grid)
    results = []
    for combo in itertools.product(*(grid[k] for k in names)):
        parameters = dict(zip(names, combo))
        overlap = set(parameters) & set(fixed)
        if overlap:
            raise ValidationError(f"parameters swept and fixed: {sorted(overlap)}")
        parameters.update(fixed)
        results.append(run_experiment(name, fn, **parameters))
    return results
