"""Experiment runner: parameter sweeps with a parallel, fault-tolerant backend.

The execution core of the benchmark engine (see
:mod:`repro.experiments.engine`). ``sweep`` expands a parameter grid and
hands the configurations to :func:`run_configurations`, which runs them
either in-process (the default — closures and lambdas welcome) or on a
``ProcessPoolExecutor`` with a per-configuration timeout and a bounded,
deterministically-reseeded retry budget. Results always come back in grid
(Cartesian-product) order regardless of completion order, so parallel runs
are output-identical to serial ones.
"""

from __future__ import annotations

import hashlib
import itertools
import os
import time
from collections.abc import Callable, Mapping, Sequence
from concurrent.futures import Future, ProcessPoolExecutor
from concurrent.futures import TimeoutError as _FutureTimeoutError
from dataclasses import dataclass, field

from repro.exceptions import ExperimentError, ValidationError
from repro.observability import tracer as _trace

__all__ = [
    "ExperimentResult",
    "expand_grid",
    "reseed",
    "run_configurations",
    "run_experiment",
    "sweep",
]


@dataclass
class ExperimentResult:
    """One experiment configuration and its measured outputs."""

    name: str
    parameters: dict
    outputs: dict
    seconds: float = 0.0
    metadata: dict = field(default_factory=dict)

    @property
    def failed(self) -> bool:
        """Whether this configuration exhausted its retry budget."""
        return "error" in self.metadata

    def __str__(self) -> str:
        params = ", ".join(f"{k}={v}" for k, v in self.parameters.items())
        outputs = ", ".join(f"{k}={v}" for k, v in self.outputs.items())
        return f"{self.name}({params}) -> {outputs} [{self.seconds:.3f}s]"


def reseed(seed: int, attempt: int) -> int:
    """Deterministically re-derive a worker seed for a retry attempt.

    Attempt 0 returns ``seed`` unchanged; attempt ``k > 0`` hashes
    ``(seed, k)`` so a retried configuration gets a fresh but reproducible
    RNG stream instead of replaying the exact draw that just failed.

    Parameters
    ----------
    seed:
        The configuration's original integer seed.
    attempt:
        Retry attempt number (0 = first try).
    """
    if attempt == 0:
        return int(seed)
    blob = f"repro.reseed:{int(seed)}:{int(attempt)}".encode()
    return int.from_bytes(hashlib.sha256(blob).digest()[:4], "big")


def run_experiment(
    name: str, fn: Callable[..., Mapping], **parameters
) -> ExperimentResult:
    """Run ``fn(**parameters)`` and wrap its dict result with timing.

    Parameters
    ----------
    name:
        Label stored on the result.
    fn:
        Experiment function; must return a mapping of outputs.
    """
    outputs, seconds, worker, trace = _traced_invoke(name, fn, parameters)
    metadata = {"worker": worker, "retries": 0}
    if trace is not None:
        metadata["trace"] = trace
    return ExperimentResult(
        name=name,
        parameters=dict(parameters),
        outputs=outputs,
        seconds=seconds,
        metadata=metadata,
    )


def _invoke(fn: Callable[..., Mapping], parameters: Mapping) -> tuple:
    """Execute one configuration; returns ``(outputs, seconds, worker pid)``.

    Top-level so it pickles for the process-pool backend.
    """
    start = time.perf_counter()
    outputs = fn(**parameters)
    seconds = time.perf_counter() - start
    if not isinstance(outputs, Mapping):
        raise ValidationError("experiment functions must return a mapping")
    return dict(outputs), seconds, os.getpid()


def expand_grid(grid: Mapping[str, Sequence], fixed: Mapping | None = None) -> list[dict]:
    """Expand a parameter grid into its list of configurations.

    Parameters
    ----------
    grid:
        Mapping from parameter name to a non-empty sequence of values.
    fixed:
        Parameters held constant; merged into every configuration. Must
        not overlap the swept names.
    """
    if not isinstance(grid, Mapping) or not grid:
        raise ValidationError("grid must be a non-empty mapping")
    empty = sorted(k for k, values in grid.items() if len(list(values)) == 0)
    if empty:
        raise ValidationError(
            f"grid values must be non-empty sequences; empty: {empty}"
        )
    fixed = dict(fixed or {})
    overlap = set(grid) & set(fixed)
    if overlap:
        raise ValidationError(f"parameters swept and fixed: {sorted(overlap)}")
    names = list(grid)
    configurations = []
    for combo in itertools.product(*(grid[k] for k in names)):
        parameters = dict(zip(names, combo))
        parameters.update(fixed)
        configurations.append(parameters)
    return configurations


def _reseeded(parameters: dict, seed_param: str | None, attempt: int) -> dict:
    """The configuration to use for retry ``attempt`` (seed re-derived)."""
    if attempt == 0 or not seed_param or seed_param not in parameters:
        return parameters
    fresh = dict(parameters)
    fresh[seed_param] = reseed(parameters[seed_param], attempt)
    return fresh


def _failure(
    name: str, parameters: dict, retries: int, error: BaseException
) -> ExperimentResult:
    return ExperimentResult(
        name=name,
        parameters=dict(parameters),
        outputs={},
        seconds=0.0,
        metadata={
            "worker": None,
            "retries": retries,
            "error": f"{type(error).__name__}: {error}",
        },
    )


def _traced_invoke(
    name: str, fn: Callable[..., Mapping], parameters: Mapping
) -> tuple:
    """``_invoke`` under a per-configuration span with a trace delta.

    Returns ``(outputs, seconds, worker, trace_summary)`` where the last
    element is ``None`` when tracing is disabled, else a small dict of the
    ledger events, spans, and mechanism releases this configuration alone
    produced (computed as before/after deltas on the active tracer).
    ``mechanism_releases`` counts individual draws: a batched
    ``release_many(d, n)`` call contributes ``n`` (one aggregated ledger
    event with ``count == n``), exactly like ``n`` single releases.
    """
    tracer = _trace.current()
    if tracer is None:
        return (*_invoke(fn, parameters), None)
    events_before = len(tracer.events)
    spans_before = len(tracer.spans)
    releases_before = tracer.metrics.counter("mechanism.releases")
    with tracer.span(f"config:{name}"):
        outputs, seconds, worker = _invoke(fn, parameters)
    summary = {
        "seconds": seconds,
        "ledger_events": len(tracer.events) - events_before,
        "spans": len(tracer.spans) - spans_before - 1,  # minus our own
        "mechanism_releases": tracer.metrics.counter("mechanism.releases")
        - releases_before,
    }
    return outputs, seconds, worker, summary


def _run_serial(
    name: str,
    fn: Callable[..., Mapping],
    configurations: Sequence[Mapping],
    retries: int,
    seed_param: str | None,
    on_error: str,
) -> list[ExperimentResult]:
    results = []
    for original in configurations:
        original = dict(original)
        attempt = 0
        while True:
            parameters = _reseeded(original, seed_param, attempt)
            try:
                outputs, seconds, worker, trace = _traced_invoke(
                    name, fn, parameters
                )
            except Exception as error:
                if attempt < retries:
                    attempt += 1
                    continue
                if on_error == "raise":
                    raise ExperimentError(
                        f"{name}{parameters} failed after {attempt} "
                        f"retr{'y' if attempt == 1 else 'ies'}: {error}"
                    ) from error
                results.append(_failure(name, parameters, attempt, error))
                break
            metadata = {"worker": worker, "retries": attempt}
            if trace is not None:
                metadata["trace"] = trace
            results.append(
                ExperimentResult(
                    name=name,
                    parameters=dict(parameters),
                    outputs=outputs,
                    seconds=seconds,
                    metadata=metadata,
                )
            )
            break
    return results


def _run_pooled(
    name: str,
    fn: Callable[..., Mapping],
    configurations: Sequence[Mapping],
    workers: int,
    timeout: float | None,
    retries: int,
    seed_param: str | None,
    on_error: str,
) -> list[ExperimentResult]:
    originals = [dict(c) for c in configurations]
    results: list[ExperimentResult | None] = [None] * len(originals)
    timed_out = False
    executor = ProcessPoolExecutor(max_workers=workers)
    try:
        pending: dict[int, tuple[Future, dict, int]] = {}
        for index, parameters in enumerate(originals):
            pending[index] = (
                executor.submit(_invoke, fn, parameters),
                parameters,
                0,
            )
        # Resolve strictly in submission (= grid) order so the returned
        # list is deterministic no matter which worker finishes first.
        for index in range(len(originals)):
            while results[index] is None:
                future, parameters, attempt = pending[index]
                try:
                    outputs, seconds, worker = future.result(timeout=timeout)
                except Exception as error:
                    if isinstance(error, (TimeoutError, _FutureTimeoutError)):
                        timed_out = True
                        future.cancel()
                    if attempt < retries:
                        attempt += 1
                        fresh = _reseeded(originals[index], seed_param, attempt)
                        pending[index] = (
                            executor.submit(_invoke, fn, fresh),
                            fresh,
                            attempt,
                        )
                        continue
                    if on_error == "raise":
                        raise ExperimentError(
                            f"{name}{parameters} failed after {attempt} "
                            f"retr{'y' if attempt == 1 else 'ies'}: {error}"
                        ) from error
                    results[index] = _failure(name, parameters, attempt, error)
                    break
                results[index] = ExperimentResult(
                    name=name,
                    parameters=dict(parameters),
                    outputs=outputs,
                    seconds=seconds,
                    metadata={"worker": worker, "retries": attempt},
                )
    finally:
        # A timed-out task cannot be interrupted mid-run; don't block on
        # its worker — let it finish (or die with the interpreter) in the
        # background while results are already complete.
        executor.shutdown(wait=not timed_out, cancel_futures=True)
    return [result for result in results if result is not None]


def run_configurations(
    name: str,
    fn: Callable[..., Mapping],
    configurations: Sequence[Mapping],
    *,
    workers: int = 1,
    timeout: float | None = None,
    retries: int = 0,
    seed_param: str | None = None,
    on_error: str = "raise",
) -> list[ExperimentResult]:
    """Run explicit configurations through the serial or pooled backend.

    Parameters
    ----------
    name:
        Label stored on every result.
    fn:
        Experiment function mapping keyword parameters to an output
        mapping. Must be picklable (a module-level function) when
        ``workers > 1`` or ``timeout`` is set.
    configurations:
        The parameter dicts to run, in the order results are wanted.
    workers:
        Process-pool size. ``1`` with no ``timeout`` runs in-process.
    timeout:
        Per-configuration wall-clock budget in seconds (pooled backend
        only; forces the pool even at ``workers=1``). The wait for a
        retried configuration may include queueing time behind other
        configurations.
    retries:
        How many times a failing/timed-out configuration is re-run before
        it counts as failed.
    seed_param:
        Name of an integer seed parameter; on retry ``k`` it is replaced
        with ``reseed(seed, k)`` so the re-run is reproducible but does
        not replay the identical RNG stream.
    on_error:
        ``"raise"`` propagates the first exhausted failure as
        :class:`~repro.exceptions.ExperimentError`; ``"record"`` returns a
        result with empty outputs and the error message in
        ``metadata["error"]`` and keeps going.

    Notes
    -----
    When a tracer is active (:mod:`repro.observability`) the in-process
    serial backend records a per-configuration span and a trace summary in
    ``metadata["trace"]``. Pooled workers are separate processes that
    cannot report into the parent's tracer, so pooled results carry no
    trace summary — by design, rather than silently-empty numbers.
    """
    if workers < 1:
        raise ValidationError("workers must be >= 1")
    if retries < 0:
        raise ValidationError("retries must be >= 0")
    if timeout is not None and not timeout > 0:
        raise ValidationError("timeout must be positive when set")
    if on_error not in ("raise", "record"):
        raise ValidationError("on_error must be 'raise' or 'record'")
    if not configurations:
        return []
    if workers == 1 and timeout is None:
        return _run_serial(name, fn, configurations, retries, seed_param, on_error)
    return _run_pooled(
        name, fn, configurations, workers, timeout, retries, seed_param, on_error
    )


def sweep(
    name: str,
    fn: Callable[..., Mapping],
    grid: Mapping[str, Sequence],
    *,
    workers: int = 1,
    timeout: float | None = None,
    retries: int = 0,
    seed_param: str | None = None,
    on_error: str = "raise",
    **fixed,
) -> list[ExperimentResult]:
    """Run ``fn`` over the Cartesian product of ``grid`` values.

    Results are returned in grid order (``itertools.product`` over the
    grid's values in key order) regardless of the backend or completion
    order.

    Parameters
    ----------
    grid:
        Mapping from parameter name to the non-empty sequence of values
        to sweep. An empty mapping or an empty value sequence raises
        :class:`~repro.exceptions.ValidationError` instead of silently
        producing an empty sweep.
    workers:
        Process-pool size; ``1`` (default) runs serially in-process.
    timeout:
        Per-configuration wall-clock budget in seconds.
    retries:
        Retry budget per configuration (see :func:`run_configurations`).
    seed_param:
        Seed parameter re-derived on retries (see :func:`reseed`).
    on_error:
        ``"raise"`` (default) or ``"record"``.
    fixed:
        Parameters held constant across the sweep.
    """
    configurations = expand_grid(grid, fixed)
    return run_configurations(
        name,
        fn,
        configurations,
        workers=workers,
        timeout=timeout,
        retries=retries,
        seed_param=seed_param,
        on_error=on_error,
    )
