"""Performance baselines and the ``repro bench --compare`` regression gate.

The benchmark engine gives every commit a perf fingerprint (the
``BENCH_<id>.json`` manifests); this module turns the fingerprint into a
*gate*. A committed :class:`PerfBaseline` (``benchmarks/perf_baseline.json``)
records the blessed per-experiment compute seconds, and
:func:`compare_to_baseline` diffs a fresh run against it under a
configurable slowdown tolerance — so wins like the vectorized
``release_many`` kernels are enforced by CI rather than just claimed.

The number compared is the manifest's ``executed_seconds`` (per-config
compute with cache hits excluded), which is why the CLI forces fresh
timings whenever ``--compare`` or ``--write-baseline`` is given.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

from repro.exceptions import ValidationError
from repro.experiments.manifest import RunManifest

__all__ = [
    "PERF_SCHEMA_VERSION",
    "PerfBaseline",
    "PerfComparison",
    "compare_to_baseline",
    "load_baseline",
]

#: Schema version of the perf-baseline JSON document.
PERF_SCHEMA_VERSION = 1


@dataclass(frozen=True)
class PerfBaseline:
    """Blessed per-experiment timings, committed next to the bench files.

    Parameters
    ----------
    experiments:
        Mapping experiment id → ``{"seconds": float, "configurations": int}``
        where ``seconds`` is the manifest's ``executed_seconds``.
    note:
        Free-form provenance line (machine, commit, why re-baselined).
    """

    experiments: dict = field(default_factory=dict)
    note: str = ""

    @classmethod
    def from_manifests(cls, manifests, note: str = "") -> "PerfBaseline":
        """Build a baseline from the manifests of a fresh (uncached) run.

        Parameters
        ----------
        manifests:
            Iterable of :class:`~repro.experiments.manifest.RunManifest`.
        note:
            Provenance line stored verbatim in the baseline.
        """
        experiments = {}
        for manifest in manifests:
            if manifest.cache_hits:
                raise ValidationError(
                    f"baseline for {manifest.experiment_id} would include "
                    f"{manifest.cache_hits} cache hits; rerun with the "
                    "cache disabled so the timings are real"
                )
            experiments[manifest.experiment_id] = {
                "seconds": float(manifest.executed_seconds),
                "configurations": len(manifest.records),
            }
        return cls(experiments=experiments, note=str(note))

    def to_dict(self) -> dict:
        """The baseline as a JSON-serializable dict."""
        return {
            "schema_version": PERF_SCHEMA_VERSION,
            "note": self.note,
            "experiments": {
                key: dict(value)
                for key, value in sorted(self.experiments.items())
            },
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "PerfBaseline":
        """Rebuild a baseline from its :meth:`to_dict` form.

        Parameters
        ----------
        payload:
            Parsed JSON document.
        """
        if not isinstance(payload, dict):
            raise ValidationError("perf baseline must be a JSON object")
        version = payload.get("schema_version")
        if version != PERF_SCHEMA_VERSION:
            raise ValidationError(
                f"unsupported perf-baseline schema version {version!r} "
                f"(supported: {PERF_SCHEMA_VERSION})"
            )
        experiments = payload.get("experiments")
        if not isinstance(experiments, dict) or not experiments:
            raise ValidationError(
                "perf baseline must map at least one experiment"
            )
        parsed = {}
        for key, value in experiments.items():
            if not isinstance(value, dict) or "seconds" not in value:
                raise ValidationError(
                    f"baseline entry {key!r} must be an object with "
                    "'seconds'"
                )
            seconds = float(value["seconds"])
            if seconds <= 0:
                raise ValidationError(
                    f"baseline entry {key!r} has non-positive seconds"
                )
            parsed[str(key)] = {
                "seconds": seconds,
                "configurations": int(value.get("configurations", 0)),
            }
        return cls(parsed, note=str(payload.get("note", "")))

    def write(self, path) -> Path:
        """Write the baseline JSON to ``path`` and return it.

        Parameters
        ----------
        path:
            Destination file path.
        """
        import json

        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(self.to_dict(), indent=2) + "\n")
        return path


def load_baseline(path) -> PerfBaseline:
    """Load and validate a committed perf baseline.

    Parameters
    ----------
    path:
        Path to a ``perf_baseline.json`` document.
    """
    import json

    path = Path(path)
    if not path.exists():
        raise ValidationError(f"perf baseline not found: {path}")
    try:
        payload = json.loads(path.read_text())
    except json.JSONDecodeError as error:
        raise ValidationError(f"perf baseline {path} is not valid JSON: {error}")
    return PerfBaseline.from_dict(payload)


@dataclass(frozen=True)
class PerfEntry:
    """One experiment's measured-vs-baseline comparison row.

    Parameters
    ----------
    experiment_id:
        The experiment compared.
    baseline_seconds:
        Blessed compute seconds from the committed baseline.
    measured_seconds:
        ``executed_seconds`` of the fresh manifest.
    ratio:
        ``measured / baseline`` — > 1 means slower than the baseline.
    tolerance:
        Largest acceptable ratio.
    configurations_changed:
        True when the sweep size differs from the baseline's record of it
        (a ratio across different workloads is not meaningful).
    """

    experiment_id: str
    baseline_seconds: float
    measured_seconds: float
    ratio: float
    tolerance: float
    configurations_changed: bool = False

    @property
    def regressed(self) -> bool:
        """True when this experiment fails the gate."""
        return self.configurations_changed or self.ratio > self.tolerance

    def to_dict(self) -> dict:
        """The row as a JSON-serializable dict."""
        return {
            "experiment": self.experiment_id,
            "baseline_seconds": self.baseline_seconds,
            "measured_seconds": self.measured_seconds,
            "ratio": self.ratio,
            "tolerance": self.tolerance,
            "configurations_changed": self.configurations_changed,
            "regressed": self.regressed,
        }


@dataclass(frozen=True)
class PerfComparison:
    """A full fresh-run-vs-baseline comparison.

    Parameters
    ----------
    entries:
        One :class:`PerfEntry` per compared experiment.
    tolerance:
        The slowdown tolerance the entries were judged against.
    """

    entries: tuple
    tolerance: float

    @property
    def regressions(self) -> tuple:
        """The entries that fail the gate."""
        return tuple(entry for entry in self.entries if entry.regressed)

    @property
    def ok(self) -> bool:
        """True when every compared experiment is within tolerance."""
        return not self.regressions

    def to_dict(self) -> dict:
        """The comparison as a JSON-serializable report."""
        return {
            "schema_version": PERF_SCHEMA_VERSION,
            "tolerance": self.tolerance,
            "ok": self.ok,
            "regressions": [e.experiment_id for e in self.regressions],
            "entries": [entry.to_dict() for entry in self.entries],
        }


def compare_to_baseline(
    manifests, baseline: PerfBaseline, tolerance: float = 1.5
) -> PerfComparison:
    """Diff fresh manifests against a committed baseline.

    An experiment regresses when ``measured / baseline > tolerance`` or
    when its sweep size no longer matches the baseline's (in which case
    the ratio compares different workloads and the baseline must be
    regenerated). An experiment missing from the baseline is a usage
    error — regenerate the baseline with ``--write-baseline`` — and
    raises :class:`~repro.exceptions.ValidationError`.

    Parameters
    ----------
    manifests:
        Iterable of :class:`~repro.experiments.manifest.RunManifest` from
        a fresh (cache-bypassing) run.
    baseline:
        The committed :class:`PerfBaseline`.
    tolerance:
        Largest acceptable ``measured / baseline`` slowdown ratio.
    """
    if tolerance <= 0:
        raise ValidationError("tolerance must be > 0")
    entries = []
    for manifest in manifests:
        if not isinstance(manifest, RunManifest):
            raise ValidationError("compare_to_baseline expects RunManifests")
        blessed = baseline.experiments.get(manifest.experiment_id)
        if blessed is None:
            known = ", ".join(sorted(baseline.experiments))
            raise ValidationError(
                f"experiment {manifest.experiment_id} is not in the perf "
                f"baseline (has: {known}); regenerate it with "
                "--write-baseline"
            )
        if manifest.cache_hits:
            raise ValidationError(
                f"manifest for {manifest.experiment_id} contains "
                f"{manifest.cache_hits} cache hits; compare needs fresh "
                "timings (run with the cache disabled)"
            )
        measured = float(manifest.executed_seconds)
        entries.append(
            PerfEntry(
                experiment_id=manifest.experiment_id,
                baseline_seconds=blessed["seconds"],
                measured_seconds=measured,
                ratio=measured / blessed["seconds"],
                tolerance=float(tolerance),
                configurations_changed=bool(
                    blessed["configurations"]
                    and blessed["configurations"] != len(manifest.records)
                ),
            )
        )
    return PerfComparison(entries=tuple(entries), tolerance=float(tolerance))
