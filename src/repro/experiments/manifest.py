"""Run manifests: the machine-readable ``BENCH_<id>.json`` trajectory.

Every engine run of an experiment produces one :class:`RunManifest`
recording, per configuration, the wall time, the worker that ran it, how
many retries it needed, and whether it was served from the result cache —
plus run-level totals. ``RunManifest.write`` serializes it to
``BENCH_<id>.json`` with a stable, versioned schema so perf trajectories
can be diffed across commits by CI.

Schema (version 1)::

    {
      "schema_version": 1,
      "experiment": "E4",
      "claim": "...",
      "bench": "benchmarks/bench_e4_gibbs_privacy.py",
      "code_digest": "<sha256>",
      "engine": {"workers": 4, "cache": true, "timeout": null, "retries": 0},
      "total_seconds": 1.234,
      "summary": {"configurations": 15, "cache_hits": 0, "failures": 0,
                  "executed_seconds": 1.2},
      "configurations": [
        {"parameters": {...}, "outputs": {...}, "seconds": 0.08,
         "worker": 12345, "retries": 0, "cache_hit": false, "error": null},
        ...
      ]
    }

A configuration record may additionally carry an OPTIONAL ``"trace"`` key
(still schema version 1; absent unless the run executed serially under an
active tracer): a small summary dict of the ledger events, spans, and
mechanism releases attributable to that configuration alone.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.exceptions import ValidationError

__all__ = [
    "BENCH_SCHEMA_VERSION",
    "ConfigurationRecord",
    "RunManifest",
    "load_manifest",
]

BENCH_SCHEMA_VERSION = 1

_RECORD_KEYS = frozenset(
    ("parameters", "outputs", "seconds", "worker", "retries", "cache_hit", "error")
)


@dataclass
class ConfigurationRecord:
    """One configuration's execution record inside a run manifest."""

    parameters: dict
    outputs: dict
    seconds: float
    worker: int | None = None
    retries: int = 0
    cache_hit: bool = False
    error: str | None = None
    trace: dict | None = None

    @property
    def ok(self) -> bool:
        """Whether the configuration produced outputs (no terminal error)."""
        return self.error is None

    def to_dict(self) -> dict:
        """The record as a JSON-serializable dict (schema order).

        The optional ``trace`` summary is serialized only when present, so
        untraced manifests are byte-identical to pre-observability ones.
        """
        payload = {
            "parameters": dict(self.parameters),
            "outputs": dict(self.outputs),
            "seconds": float(self.seconds),
            "worker": self.worker,
            "retries": int(self.retries),
            "cache_hit": bool(self.cache_hit),
            "error": self.error,
        }
        if self.trace is not None:
            payload["trace"] = dict(self.trace)
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "ConfigurationRecord":
        """Rebuild a record from its :meth:`to_dict` form.

        Parameters
        ----------
        payload:
            Dict with the schema's record keys (``trace`` optional).
        """
        if not isinstance(payload, dict) or not _RECORD_KEYS <= set(payload):
            missing = sorted(_RECORD_KEYS - set(payload or ()))
            raise ValidationError(f"configuration record missing keys: {missing}")
        return cls(
            parameters=dict(payload["parameters"]),
            outputs=dict(payload["outputs"]),
            seconds=float(payload["seconds"]),
            worker=payload["worker"],
            retries=int(payload["retries"]),
            cache_hit=bool(payload["cache_hit"]),
            error=payload["error"],
            trace=payload.get("trace"),
        )


@dataclass
class RunManifest:
    """One engine run of one experiment, ready to serialize."""

    experiment_id: str
    claim: str
    bench: str
    code_digest: str
    workers: int
    cache_enabled: bool
    timeout: float | None = None
    retries: int = 0
    total_seconds: float = 0.0
    records: list[ConfigurationRecord] = field(default_factory=list)

    @property
    def cache_hits(self) -> int:
        """How many configurations were served from the result cache."""
        return sum(1 for record in self.records if record.cache_hit)

    @property
    def failures(self) -> int:
        """How many configurations exhausted their retry budget."""
        return sum(1 for record in self.records if not record.ok)

    @property
    def executed_seconds(self) -> float:
        """Summed per-configuration compute time (cache hits excluded)."""
        return float(
            sum(record.seconds for record in self.records if not record.cache_hit)
        )

    def to_dict(self) -> dict:
        """The manifest as its schema-version-1 JSON document."""
        return {
            "schema_version": BENCH_SCHEMA_VERSION,
            "experiment": self.experiment_id,
            "claim": self.claim,
            "bench": self.bench,
            "code_digest": self.code_digest,
            "engine": {
                "workers": int(self.workers),
                "cache": bool(self.cache_enabled),
                "timeout": self.timeout,
                "retries": int(self.retries),
            },
            "total_seconds": float(self.total_seconds),
            "summary": {
                "configurations": len(self.records),
                "cache_hits": self.cache_hits,
                "failures": self.failures,
                "executed_seconds": self.executed_seconds,
            },
            "configurations": [record.to_dict() for record in self.records],
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "RunManifest":
        """Rebuild a manifest from its :meth:`to_dict` document.

        Parameters
        ----------
        payload:
            A schema-version-1 ``BENCH_<id>.json`` document.
        """
        if not isinstance(payload, dict):
            raise ValidationError("manifest payload must be a dict")
        version = payload.get("schema_version")
        if version != BENCH_SCHEMA_VERSION:
            raise ValidationError(
                f"unsupported BENCH schema version {version!r}; "
                f"this build reads version {BENCH_SCHEMA_VERSION}"
            )
        required = ("experiment", "claim", "bench", "code_digest", "engine",
                    "total_seconds", "configurations")
        missing = sorted(set(required) - set(payload))
        if missing:
            raise ValidationError(f"manifest missing keys: {missing}")
        engine = payload["engine"]
        return cls(
            experiment_id=str(payload["experiment"]),
            claim=str(payload["claim"]),
            bench=str(payload["bench"]),
            code_digest=str(payload["code_digest"]),
            workers=int(engine.get("workers", 1)),
            cache_enabled=bool(engine.get("cache", False)),
            timeout=engine.get("timeout"),
            retries=int(engine.get("retries", 0)),
            total_seconds=float(payload["total_seconds"]),
            records=[
                ConfigurationRecord.from_dict(record)
                for record in payload["configurations"]
            ],
        )

    def write(self, directory) -> Path:
        """Write ``BENCH_<id>.json`` under ``directory``; returns the path.

        Parameters
        ----------
        directory:
            Target directory (created if needed).
        """
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        path = directory / f"BENCH_{self.experiment_id}.json"
        path.write_text(
            json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        return path


def load_manifest(path) -> RunManifest:
    """Read and validate a ``BENCH_<id>.json`` file.

    Parameters
    ----------
    path:
        Path to a manifest written by :meth:`RunManifest.write`.
    """
    try:
        payload = json.loads(Path(path).read_text(encoding="utf-8"))
    except OSError as error:
        raise ValidationError(f"cannot read manifest {path}: {error}") from error
    except json.JSONDecodeError as error:
        raise ValidationError(f"manifest {path} is not valid JSON: {error}") from error
    return RunManifest.from_dict(payload)
