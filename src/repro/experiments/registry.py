"""Registry of the reproduction's experiments.

One authoritative table mapping experiment ids to the paper claim, the
implementing modules and the bench file that regenerates the result. The
CLI prints it; a test asserts it stays in sync with the bench files on
disk. Anything that needs to name the id range (docs, CLI help) should
derive it via :func:`experiment_span` rather than hard-coding it — a
hard-coded "E1…E12" went stale once already.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import ValidationError


@dataclass(frozen=True)
class Experiment:
    """One experiment of the reproduction."""

    id: str
    claim: str
    modules: tuple[str, ...]
    bench: str


EXPERIMENTS: tuple[Experiment, ...] = (
    Experiment(
        "E1",
        "Figure 1 — DP learning as an information channel, measured",
        ("repro.core.channel", "repro.core.gibbs", "repro.information"),
        "benchmarks/bench_e1_channel.py",
    ),
    Experiment(
        "E2",
        "Theorem 3.1 — PAC-Bayes bounds hold w.p. >= 1-δ",
        ("repro.core.pac_bayes", "repro.learning"),
        "benchmarks/bench_e2_bound_validity.py",
    ),
    Experiment(
        "E3",
        "Lemma 3.2 — the Gibbs posterior minimizes the bound",
        ("repro.core.pac_bayes", "repro.core.gibbs"),
        "benchmarks/bench_e3_gibbs_optimality.py",
    ),
    Experiment(
        "E4",
        "Theorem 4.1 — the Gibbs estimator is 2λΔ(R̂)-DP (exact audit)",
        ("repro.core.gibbs", "repro.privacy.audit"),
        "benchmarks/bench_e4_gibbs_privacy.py",
    ),
    Experiment(
        "E5",
        "Theorem 4.2 — the MI-regularized optimum is the Gibbs channel",
        ("repro.core.tradeoff", "repro.information.blahut_arimoto"),
        "benchmarks/bench_e5_tradeoff_fixed_point.py",
    ),
    Experiment(
        "E6",
        "Section 4 — ε tilts the information/risk balance (the frontier)",
        ("repro.core.tradeoff", "repro.core.channel"),
        "benchmarks/bench_e6_privacy_information_curve.py",
    ),
    Experiment(
        "E7",
        "Section 1 motivation — generic Gibbs vs specialized private ERM",
        ("repro.private_learning", "repro.learning", "repro.core.gibbs"),
        "benchmarks/bench_e7_private_erm.py",
    ),
    Experiment(
        "E8",
        "Theorems 2.3/2.5 — Laplace and exponential mechanism guarantees",
        ("repro.mechanisms", "repro.privacy.audit"),
        "benchmarks/bench_e8_mechanisms.py",
    ),
    Experiment(
        "E9",
        "Section 5 future work — I(Ẑ;θ) upper bounds compared (Alvim et al.)",
        ("repro.information.leakage", "repro.core.channel"),
        "benchmarks/bench_e9_leakage_bounds.py",
    ),
    Experiment(
        "E10",
        "Section 5 future work — private regression & density estimation",
        ("repro.private_learning.regression", "repro.private_learning.density"),
        "benchmarks/bench_e10_regression_density.py",
    ),
    Experiment(
        "E11",
        "Extension — privacy ⇒ low I(Ẑ;θ) ⇒ small generalization gap",
        ("repro.core.information_risk", "repro.core.channel"),
        "benchmarks/bench_e11_generalization.py",
    ),
    Experiment(
        "E12",
        "Extension — membership-inference ROC vs the ε-DP tradeoff curve",
        ("repro.privacy.hypothesis_testing", "repro.core.gibbs"),
        "benchmarks/bench_e12_membership_inference.py",
    ),
    Experiment(
        "E13",
        "Extension — posterior-sampling privacy and the Fano lower bound",
        ("repro.core.bayes", "repro.information.fano"),
        "benchmarks/bench_e13_posterior_sampling_fano.py",
    ),
    Experiment(
        "E14",
        "Extension — accountants compared (basic/advanced/RDP); smooth "
        "sensitivity vs global",
        (
            "repro.mechanisms.composition",
            "repro.privacy.renyi",
            "repro.mechanisms.smooth_sensitivity",
        ),
        "benchmarks/bench_e14_composition_accounting.py",
    ),
    Experiment(
        "E15",
        "Extension — deployment modes: local DP vs central; continual "
        "release (tree aggregation)",
        ("repro.privacy.local", "repro.mechanisms.continual"),
        "benchmarks/bench_e15_deployment_modes.py",
    ),
    Experiment(
        "E16",
        "Section 3 — data-independent (Occam/VC) vs PAC-Bayes certificates",
        ("repro.core.uniform_bounds", "repro.core.pac_bayes"),
        "benchmarks/bench_e16_uniform_vs_pac_bayes.py",
    ),
    Experiment(
        "E17",
        "Extension — regularized exponential mechanism in R^d (batched "
        "MALA) vs perturbation baselines",
        (
            "repro.private_learning.langevin",
            "repro.distributions.sampling",
            "repro.private_learning",
        ),
        "benchmarks/bench_e17_langevin_erm.py",
    ),
    Experiment(
        "E18",
        "Extension — DJW local minimax rates: mean-estimation MSE by "
        "trust model + numerical data-processing inequality",
        (
            "repro.local_privacy.mechanisms",
            "repro.local_privacy.estimation",
            "repro.information",
        ),
        "benchmarks/bench_e18_local_minimax.py",
    ),
    Experiment(
        "E19",
        "Extension — locally-private SGD (privatized per-example "
        "gradients) vs central-DP and non-private learners",
        ("repro.local_privacy.sgd", "repro.local_privacy", "repro.learning"),
        "benchmarks/bench_e19_local_sgd.py",
    ),
)


def experiment_span() -> str:
    """The registry's id range as text (e.g. ``"E1–E16"``), never stale."""
    return f"{EXPERIMENTS[0].id}–{EXPERIMENTS[-1].id}"


def get_experiment(experiment_id: str) -> Experiment:
    """Look up one experiment by id (case-insensitive)."""
    wanted = experiment_id.strip().upper()
    for experiment in EXPERIMENTS:
        if experiment.id == wanted:
            return experiment
    raise ValidationError(
        f"unknown experiment {experiment_id!r}; known ids: "
        + ", ".join(e.id for e in EXPERIMENTS)
    )
