"""Plain-text result tables for the benchmark harness."""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.exceptions import ValidationError


class ResultTable:
    """A fixed-schema table of experiment rows, rendered as aligned text.

    Parameters
    ----------
    columns:
        Ordered column names.
    title:
        Optional heading printed above the table.
    """

    def __init__(self, columns: Sequence[str], *, title: str = "") -> None:
        self.columns = [str(c) for c in columns]
        if not self.columns:
            raise ValidationError("columns must not be empty")
        self.title = title
        self.rows: list[list[str]] = []

    def add_row(self, *values, **named) -> None:
        """Append a row, positionally or by column name."""
        if values and named:
            raise ValidationError("pass values positionally or by name, not both")
        if named:
            missing = [c for c in self.columns if c not in named]
            if missing:
                raise ValidationError(f"missing columns: {missing}")
            values = tuple(named[c] for c in self.columns)
        if len(values) != len(self.columns):
            raise ValidationError(
                f"expected {len(self.columns)} values, got {len(values)}"
            )
        self.rows.append([self._format(v) for v in values])

    @staticmethod
    def _format(value) -> str:
        if isinstance(value, np.generic):
            # np.float32 is not a float instance and np.bool_ is not a
            # bool instance; unwrap so they hit the formatted paths below
            # instead of falling through to raw str().
            value = value.item()
        if isinstance(value, bool):
            return "yes" if value else "no"
        if isinstance(value, float):
            if value == 0:
                return "0"
            magnitude = abs(value)
            if magnitude >= 1e4 or magnitude < 1e-3:
                return f"{value:.3e}"
            return f"{value:.4f}"
        return str(value)

    def render(self) -> str:
        """The table as aligned monospace text."""
        widths = [len(c) for c in self.columns]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        lines = []
        if self.title:
            lines.append(self.title)
        header = "  ".join(c.ljust(w) for c, w in zip(self.columns, widths))
        lines.append(header)
        lines.append("-" * len(header))
        for row in self.rows:
            lines.append("  ".join(cell.ljust(w) for cell, w in zip(row, widths)))
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()

    def column(self, name: str) -> list[str]:
        """All formatted cells of one column, in row order."""
        try:
            index = self.columns.index(name)
        except ValueError:
            raise ValidationError(f"no column named {name!r}") from None
        return [row[index] for row in self.rows]
