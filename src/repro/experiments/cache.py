"""Content-addressed on-disk cache for benchmark configuration results.

A cache entry is keyed by the experiment id, the canonicalized
configuration parameters, and a *code-version digest* of the modules that
implement the experiment (plus its bench file). Any edit to those sources
changes the digest, so stale results can never be served after the code
they measured has moved — re-running after a refactor transparently
recomputes everything, while repeated runs of unchanged code skip straight
to the stored outputs.

Layout on disk: ``<root>/<key[:2]>/<key>.json`` where ``key`` is the
SHA-256 hex digest of the identity triple. Entries are whole JSON
documents written atomically (tmp file + rename).
"""

from __future__ import annotations

import hashlib
import importlib.util
import json
import os
from collections.abc import Iterable, Mapping
from pathlib import Path

import numpy as np

from repro.exceptions import ValidationError
from repro.observability import tracer as _trace

__all__ = ["ResultCache", "canonical_parameters", "code_digest"]


def _jsonable(value):
    """JSON fallback: coerce numpy scalars/arrays so keys are stable."""
    if isinstance(value, np.generic):
        return value.item()
    if isinstance(value, np.ndarray):
        return value.tolist()
    raise TypeError(f"parameter of type {type(value).__name__} is not JSON-serializable")


def canonical_parameters(parameters: Mapping) -> str:
    """One canonical JSON string for a configuration's parameters.

    Keys are sorted and numpy scalars are coerced to Python scalars, so
    logically-equal configurations always map to the same cache key.

    Parameters
    ----------
    parameters:
        The configuration's parameter mapping (JSON-serializable values).
    """
    if not isinstance(parameters, Mapping):
        raise ValidationError("parameters must be a mapping")
    return json.dumps(
        dict(parameters),
        sort_keys=True,
        separators=(",", ":"),
        default=_jsonable,
    )


def _module_sources(module_name: str) -> list[tuple[str, bytes]]:
    """(label, source-bytes) pairs for a module or package, sorted."""
    try:
        spec = importlib.util.find_spec(module_name)
    except (ImportError, ValueError):
        spec = None
    if spec is None:
        return [(f"{module_name}:missing", b"")]
    files: list[Path] = []
    if spec.submodule_search_locations:
        for location in sorted(spec.submodule_search_locations):
            files.extend(sorted(Path(location).rglob("*.py")))
    elif spec.origin and spec.origin not in ("built-in", "frozen"):
        files.append(Path(spec.origin))
    sources = []
    for path in files:
        try:
            sources.append((f"{module_name}:{path.name}", path.read_bytes()))
        except OSError:
            sources.append((f"{module_name}:{path.name}:unreadable", b""))
    return sources


def code_digest(modules: Iterable[str], extra_paths: Iterable = ()) -> str:
    """SHA-256 digest over the source of the implementing modules.

    Parameters
    ----------
    modules:
        Importable module/package names whose source defines the
        experiment's behaviour (packages are walked recursively).
    extra_paths:
        Additional files to fold into the digest (e.g. the bench file
        that drives the experiment).
    """
    hasher = hashlib.sha256()
    for name in sorted(set(modules)):
        for label, blob in _module_sources(name):
            hasher.update(label.encode())
            hasher.update(b"\x00")
            hasher.update(blob)
            hasher.update(b"\x01")
    for path in sorted(str(p) for p in extra_paths):
        hasher.update(os.path.basename(path).encode())
        hasher.update(b"\x00")
        try:
            hasher.update(Path(path).read_bytes())
        except OSError:
            hasher.update(b"<unreadable>")
        hasher.update(b"\x01")
    return hasher.hexdigest()


class ResultCache:
    """Content-addressed store of completed benchmark configurations.

    Parameters
    ----------
    root:
        Directory holding the cache; created lazily on first write.
    """

    def __init__(self, root) -> None:
        self.root = Path(root)

    def key(self, experiment_id: str, parameters: Mapping, digest: str) -> str:
        """The cache key for one (experiment, configuration, code) triple.

        Parameters
        ----------
        experiment_id:
            Registry id of the experiment (e.g. ``"E4"``).
        parameters:
            The configuration's parameters (canonicalized internally).
        digest:
            Code-version digest from :func:`code_digest`.
        """
        identity = "\n".join(
            [str(experiment_id), str(digest), canonical_parameters(parameters)]
        )
        return hashlib.sha256(identity.encode()).hexdigest()

    def _path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    def get(self, key: str) -> dict | None:
        """The stored payload for ``key``, or ``None`` on miss/corruption."""
        path = self._path(key)
        tracer = _trace.current()
        try:
            with path.open(encoding="utf-8") as handle:
                payload = json.load(handle)
        except (OSError, json.JSONDecodeError):
            if tracer is not None:
                tracer.count("cache.misses")
            return None  # miss, or a torn entry: treat as absent and re-run
        if not isinstance(payload, dict) or "outputs" not in payload:
            if tracer is not None:
                tracer.count("cache.misses")
            return None
        if tracer is not None:
            tracer.count("cache.hits")
        return payload

    def put(self, key: str, payload: Mapping) -> None:
        """Atomically store ``payload`` (a JSON-serializable mapping).

        Parameters
        ----------
        key:
            Cache key from :meth:`key`.
        payload:
            Mapping with at least an ``"outputs"`` entry.
        """
        if "outputs" not in payload:
            raise ValidationError("cache payloads must carry an 'outputs' entry")
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        tmp.write_text(
            json.dumps(dict(payload), sort_keys=True, default=_jsonable),
            encoding="utf-8",
        )
        tmp.replace(path)
        tracer = _trace.current()
        if tracer is not None:
            tracer.count("cache.writes")

    def __len__(self) -> int:
        if not self.root.is_dir():
            return 0
        return sum(1 for _ in self.root.glob("*/*.json"))

    def clear(self) -> int:
        """Delete every entry; returns how many were removed."""
        removed = 0
        if not self.root.is_dir():
            return removed
        for entry in self.root.glob("*/*.json"):
            try:
                entry.unlink()
                removed += 1
            except OSError:
                continue  # concurrent eviction; nothing to do
        return removed
