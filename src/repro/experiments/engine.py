"""The benchmark engine: parallel, cached, fault-tolerant experiment runs.

Each registered experiment's bench file (``benchmarks/bench_e*.py``)
exports a ``BENCH_SPEC`` — a picklable ``case`` function plus the
parameter ``grid``/``fixed`` values it sweeps. :class:`BenchmarkEngine`
expands the grid, serves completed configurations from the
content-addressed :class:`~repro.experiments.cache.ResultCache` (keyed by
experiment id + canonical parameters + a code digest of the implementing
modules), fans the misses out over the runner's process-pool backend, and
records everything in a :class:`~repro.experiments.manifest.RunManifest`
written as ``BENCH_<id>.json``. Parallel runs return results in grid
order, bit-identical to serial runs.
"""

from __future__ import annotations

import fnmatch
import importlib
import time
from collections.abc import Callable, Mapping, Sequence
from dataclasses import dataclass, field
from pathlib import Path

from repro.exceptions import ValidationError
from repro.experiments.cache import ResultCache, code_digest
from repro.observability import tracer as _trace
from repro.experiments.manifest import ConfigurationRecord, RunManifest
from repro.experiments.registry import EXPERIMENTS, Experiment
from repro.experiments.runner import expand_grid, run_configurations

__all__ = [
    "BenchSpec",
    "BenchmarkEngine",
    "load_bench_spec",
    "select_experiments",
]


@dataclass(frozen=True)
class BenchSpec:
    """A bench module's engine entry point.

    Parameters
    ----------
    case:
        Module-level function running one configuration; returns a
        mapping of JSON-serializable outputs. Must be picklable.
    grid:
        Parameter name -> sequence of values to sweep.
    fixed:
        Parameters held constant across the sweep.
    seed_param:
        Optional name of an integer seed parameter, re-derived on retries.
    source:
        Path of the bench file the spec was loaded from (folded into the
        code digest), when known.
    """

    case: Callable[..., Mapping]
    grid: Mapping[str, Sequence]
    fixed: Mapping = field(default_factory=dict)
    seed_param: str | None = None
    source: str | None = None


def load_bench_spec(experiment: Experiment) -> BenchSpec:
    """Import an experiment's bench module and validate its ``BENCH_SPEC``.

    Parameters
    ----------
    experiment:
        Registry entry whose ``bench`` file names the module to import
        (``benchmarks/bench_e4_gibbs_privacy.py`` ->
        ``benchmarks.bench_e4_gibbs_privacy``).
    """
    stem = Path(experiment.bench).stem
    module_name = f"benchmarks.{stem}"
    try:
        module = importlib.import_module(module_name)
    except ImportError as error:
        raise ValidationError(
            f"cannot import bench module {module_name!r} for "
            f"{experiment.id}: {error}"
        ) from error
    raw = getattr(module, "BENCH_SPEC", None)
    if raw is None:
        raise ValidationError(f"{module_name} defines no BENCH_SPEC")
    if not isinstance(raw, Mapping):
        raise ValidationError(f"{module_name}.BENCH_SPEC must be a mapping")
    case = raw.get("case")
    if not callable(case):
        raise ValidationError(f"{module_name}.BENCH_SPEC['case'] must be callable")
    grid = raw.get("grid")
    if not isinstance(grid, Mapping) or not grid:
        raise ValidationError(
            f"{module_name}.BENCH_SPEC['grid'] must be a non-empty mapping"
        )
    fixed = raw.get("fixed", {})
    if not isinstance(fixed, Mapping):
        raise ValidationError(f"{module_name}.BENCH_SPEC['fixed'] must be a mapping")
    seed_param = raw.get("seed_param")
    if seed_param is not None and not isinstance(seed_param, str):
        raise ValidationError(
            f"{module_name}.BENCH_SPEC['seed_param'] must be a string"
        )
    return BenchSpec(
        case=case,
        grid=grid,
        fixed=fixed,
        seed_param=seed_param,
        source=getattr(module, "__file__", None),
    )


def select_experiments(patterns: Sequence[str] = ()) -> list[Experiment]:
    """Resolve id/glob patterns against the registry, preserving its order.

    Parameters
    ----------
    patterns:
        Case-insensitive experiment ids or globs (``"E4"``, ``"e1?"``,
        ``"E*"``). Empty selects every registered experiment. A pattern
        matching nothing raises :class:`~repro.exceptions.ValidationError`.
    """
    if not patterns:
        return list(EXPERIMENTS)
    wanted: set[str] = set()
    for pattern in patterns:
        matches = {
            experiment.id
            for experiment in EXPERIMENTS
            if fnmatch.fnmatchcase(experiment.id.upper(), str(pattern).strip().upper())
        }
        if not matches:
            raise ValidationError(
                f"no experiment matches {pattern!r}; known ids: "
                + ", ".join(e.id for e in EXPERIMENTS)
            )
        wanted |= matches
    return [experiment for experiment in EXPERIMENTS if experiment.id in wanted]


class BenchmarkEngine:
    """Parallel cached executor for the registered benchmark experiments.

    Parameters
    ----------
    workers:
        Process-pool size per experiment sweep (1 = in-process serial).
    timeout:
        Per-configuration wall-clock budget in seconds (None = unlimited).
    retries:
        Retry budget per configuration; retried seeds are re-derived
        deterministically when the bench spec names a ``seed_param``.
    cache:
        A :class:`ResultCache`, or ``None`` to disable caching.
    output_dir:
        Directory receiving ``BENCH_<id>.json`` manifests, or ``None`` to
        skip writing.
    """

    def __init__(
        self,
        *,
        workers: int = 1,
        timeout: float | None = None,
        retries: int = 0,
        cache: ResultCache | None = None,
        output_dir=None,
    ) -> None:
        if workers < 1:
            raise ValidationError("workers must be >= 1")
        if retries < 0:
            raise ValidationError("retries must be >= 0")
        if timeout is not None and not timeout > 0:
            raise ValidationError("timeout must be positive when set")
        self.workers = int(workers)
        self.timeout = timeout
        self.retries = int(retries)
        self.cache = cache
        self.output_dir = Path(output_dir) if output_dir is not None else None

    def run_experiment(
        self, experiment: Experiment, spec: BenchSpec | None = None
    ) -> RunManifest:
        """Run one experiment's sweep and return its manifest.

        Parameters
        ----------
        experiment:
            The registry entry to run.
        spec:
            Explicit :class:`BenchSpec` override; by default the spec is
            loaded from the experiment's bench module.
        """
        with _trace.span(f"experiment:{experiment.id}", workers=self.workers):
            return self._run_experiment(experiment, spec)

    def _run_experiment(
        self, experiment: Experiment, spec: BenchSpec | None
    ) -> RunManifest:
        """The sweep body of :meth:`run_experiment` (span applied outside)."""
        started = time.perf_counter()
        if spec is None:
            spec = load_bench_spec(experiment)
        extra = [spec.source] if spec.source else []
        digest = code_digest(experiment.modules, extra_paths=extra)
        configurations = expand_grid(spec.grid, spec.fixed)

        records: list[ConfigurationRecord | None] = [None] * len(configurations)
        keys: list[str | None] = [None] * len(configurations)
        missing: list[tuple[int, dict]] = []
        for index, parameters in enumerate(configurations):
            if self.cache is None:
                missing.append((index, parameters))
                continue
            key = self.cache.key(experiment.id, parameters, digest)
            keys[index] = key
            payload = self.cache.get(key)
            if payload is None:
                missing.append((index, parameters))
                continue
            records[index] = ConfigurationRecord(
                parameters=dict(payload.get("parameters", parameters)),
                outputs=dict(payload["outputs"]),
                seconds=float(payload.get("seconds", 0.0)),
                worker=payload.get("worker"),
                retries=int(payload.get("retries", 0)),
                cache_hit=True,
            )

        if missing:
            results = run_configurations(
                experiment.id,
                spec.case,
                [parameters for _, parameters in missing],
                workers=self.workers,
                timeout=self.timeout,
                retries=self.retries,
                seed_param=spec.seed_param,
                on_error="record",
            )
            for (index, _), result in zip(missing, results):
                record = ConfigurationRecord(
                    parameters=result.parameters,
                    outputs=result.outputs,
                    seconds=result.seconds,
                    worker=result.metadata.get("worker"),
                    retries=result.metadata.get("retries", 0),
                    cache_hit=False,
                    error=result.metadata.get("error"),
                    trace=result.metadata.get("trace"),
                )
                records[index] = record
                if self.cache is not None and record.ok:
                    self.cache.put(
                        keys[index]
                        or self.cache.key(
                            experiment.id, configurations[index], digest
                        ),
                        {
                            "experiment": experiment.id,
                            "parameters": record.parameters,
                            "outputs": record.outputs,
                            "seconds": record.seconds,
                            "worker": record.worker,
                            "retries": record.retries,
                        },
                    )

        manifest = RunManifest(
            experiment_id=experiment.id,
            claim=experiment.claim,
            bench=experiment.bench,
            code_digest=digest,
            workers=self.workers,
            cache_enabled=self.cache is not None,
            timeout=self.timeout,
            retries=self.retries,
            total_seconds=time.perf_counter() - started,
            records=[record for record in records if record is not None],
        )
        if self.output_dir is not None:
            manifest.write(self.output_dir)
        return manifest

    def run(self, experiments: Sequence[Experiment]) -> list[RunManifest]:
        """Run several experiments in registry order; returns the manifests.

        Parameters
        ----------
        experiments:
            Registry entries, e.g. from :func:`select_experiments`.
        """
        return [self.run_experiment(experiment) for experiment in experiments]
