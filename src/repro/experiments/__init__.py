"""Experiment harness: sweeps, the benchmark engine, tables, ASCII curves.

The benchmarks in ``benchmarks/`` use these helpers to print the
rows/series each experiment reports (EXPERIMENTS.md records the outputs).
``repro bench`` drives the same bench files through
:class:`~repro.experiments.engine.BenchmarkEngine` — a parallel, cached,
fault-tolerant executor that writes machine-readable ``BENCH_<id>.json``
manifests (see docs/BENCHMARKS.md).
"""

from repro.experiments.cache import ResultCache, canonical_parameters, code_digest
from repro.experiments.engine import (
    BenchmarkEngine,
    BenchSpec,
    load_bench_spec,
    select_experiments,
)
from repro.experiments.manifest import (
    BENCH_SCHEMA_VERSION,
    ConfigurationRecord,
    RunManifest,
    load_manifest,
)
from repro.experiments.perf import (
    PERF_SCHEMA_VERSION,
    PerfBaseline,
    PerfComparison,
    compare_to_baseline,
    load_baseline,
)
from repro.experiments.plotting import ascii_curve
from repro.experiments.registry import (
    EXPERIMENTS,
    Experiment,
    experiment_span,
    get_experiment,
)
from repro.experiments.runner import (
    ExperimentResult,
    expand_grid,
    reseed,
    run_configurations,
    run_experiment,
    sweep,
)
from repro.experiments.tables import ResultTable

__all__ = [
    "BENCH_SCHEMA_VERSION",
    "PERF_SCHEMA_VERSION",
    "BenchSpec",
    "BenchmarkEngine",
    "ConfigurationRecord",
    "EXPERIMENTS",
    "Experiment",
    "ExperimentResult",
    "PerfBaseline",
    "PerfComparison",
    "ResultCache",
    "ResultTable",
    "RunManifest",
    "ascii_curve",
    "canonical_parameters",
    "code_digest",
    "compare_to_baseline",
    "expand_grid",
    "experiment_span",
    "get_experiment",
    "load_baseline",
    "load_bench_spec",
    "load_manifest",
    "reseed",
    "run_configurations",
    "run_experiment",
    "select_experiments",
    "sweep",
]
