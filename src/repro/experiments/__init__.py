"""Experiment harness: parameter sweeps, result tables, ASCII curves.

The benchmarks in ``benchmarks/`` use these helpers to print the
rows/series each experiment reports (EXPERIMENTS.md records the outputs).
"""

from repro.experiments.tables import ResultTable
from repro.experiments.plotting import ascii_curve
from repro.experiments.runner import ExperimentResult, run_experiment, sweep

__all__ = [
    "ExperimentResult",
    "ResultTable",
    "ascii_curve",
    "run_experiment",
    "sweep",
]
