"""Minimal ASCII plotting for benchmark output (no plotting dependencies)."""

from __future__ import annotations

import numpy as np

from repro.exceptions import ValidationError


def ascii_curve(
    x_values,
    y_values,
    *,
    width: int = 60,
    height: int = 16,
    title: str = "",
    x_label: str = "x",
    y_label: str = "y",
) -> str:
    """Render (x, y) points as a monospace scatter/curve.

    Points are mapped into a width×height character grid; duplicate cells
    collapse. Good enough to eyeball the monotone shapes the experiments
    assert (risk falling in ε, mutual information rising in ε).
    """
    x = np.asarray(x_values, dtype=float)
    y = np.asarray(y_values, dtype=float)
    if x.shape != y.shape or x.ndim != 1 or x.size == 0:
        raise ValidationError("x and y must be equal-length nonempty 1-D arrays")
    if not (np.isfinite(x).all() and np.isfinite(y).all()):
        # NaN/inf would poison min()/max() (and NaN defeats the `or 1.0`
        # span fallback, since NaN is truthy) before crashing int(round()).
        raise ValidationError("x and y must contain only finite values")
    if width < 10 or height < 4:
        raise ValidationError("width must be >= 10 and height >= 4")

    x_lo, x_hi = float(x.min()), float(x.max())
    y_lo, y_hi = float(y.min()), float(y.max())
    x_span = x_hi - x_lo or 1.0
    y_span = y_hi - y_lo or 1.0

    grid = [[" "] * width for _ in range(height)]
    for xi, yi in zip(x, y):
        col = int(round((xi - x_lo) / x_span * (width - 1)))
        row = int(round((yi - y_lo) / y_span * (height - 1)))
        grid[height - 1 - row][col] = "*"

    lines = []
    if title:
        lines.append(title)
    lines.append(f"{y_label} [{y_lo:.4g} .. {y_hi:.4g}]")
    for row in grid:
        lines.append("|" + "".join(row))
    lines.append("+" + "-" * width)
    lines.append(f"{x_label} [{x_lo:.4g} .. {x_hi:.4g}]")
    return "\n".join(lines)
