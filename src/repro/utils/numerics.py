"""Numerically-stable primitives for log-domain probability arithmetic.

Everything in :mod:`repro.core` (Gibbs posteriors, PAC-Bayes bounds) and
:mod:`repro.information` (entropies, divergences) bottoms out in these
functions, so they are written to be exact in corner cases: empty supports,
zero probabilities, and ``-inf`` log-weights all behave as the measure-theory
conventions demand (``0 log 0 = 0``, a zero-probability atom carries no
divergence mass, etc.).
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ValidationError


def logsumexp(log_values, axis=None) -> np.ndarray | float:
    """Stable ``log(sum(exp(log_values)))``.

    Unlike :func:`scipy.special.logsumexp` this returns ``-inf`` (not NaN)
    when every entry is ``-inf``, which is the correct value for an empty
    mixture.
    """
    arr = np.asarray(log_values, dtype=float)
    if arr.size == 0:
        raise ValidationError("logsumexp of an empty array is undefined")
    peak = np.max(arr, axis=axis, keepdims=True)
    # Where the peak itself is -inf the whole slice sums to 0 in linear
    # space; substitute 0 for the shift to avoid inf - inf = NaN.
    safe_peak = np.where(np.isfinite(peak), peak, 0.0)
    with np.errstate(divide="ignore"):
        out = safe_peak + np.log(
            np.sum(np.exp(arr - safe_peak), axis=axis, keepdims=True)
        )
    out = np.where(np.isfinite(peak), out, peak)
    if axis is None:
        return float(out.reshape(()))
    return np.squeeze(out, axis=axis)


def log_mean_exp(log_values, axis=None) -> np.ndarray | float:
    """Stable ``log(mean(exp(log_values)))``."""
    arr = np.asarray(log_values, dtype=float)
    if axis is None:
        count = arr.size
    else:
        count = arr.shape[axis]
    return logsumexp(arr, axis=axis) - np.log(count)


def softmax(scores, axis=None) -> np.ndarray:
    """Stable softmax; rows of ``-inf`` scores receive probability zero."""
    arr = np.asarray(scores, dtype=float)
    peak = np.max(arr, axis=axis, keepdims=True)
    safe_peak = np.where(np.isfinite(peak), peak, 0.0)
    unnorm = np.exp(arr - safe_peak)
    total = np.sum(unnorm, axis=axis, keepdims=True)
    if np.any(total == 0):
        raise ValidationError("softmax received a slice of all -inf scores")
    return unnorm / total


def normalize_log_weights(log_weights) -> np.ndarray:
    """Turn unnormalized log-weights into a probability vector."""
    arr = np.asarray(log_weights, dtype=float)
    if arr.ndim != 1:
        raise ValidationError("log_weights must be one-dimensional")
    return np.exp(arr - logsumexp(arr))


def stable_log(values) -> np.ndarray:
    """Elementwise log mapping 0 to ``-inf`` without warnings."""
    arr = np.asarray(values, dtype=float)
    with np.errstate(divide="ignore"):
        return np.log(arr)


def xlogx(values) -> np.ndarray:
    """Elementwise ``x * log(x)`` with the convention ``0 log 0 = 0``."""
    arr = np.asarray(values, dtype=float)
    out = np.zeros_like(arr)
    mask = arr > 0
    out[mask] = arr[mask] * np.log(arr[mask])
    return out


def xlogy(x, y) -> np.ndarray:
    """Elementwise ``x * log(y)`` with the convention ``0 * log(anything) = 0``.

    When ``x > 0`` and ``y == 0`` the result is ``-inf``, matching the
    divergence convention that mass on an impossible event costs infinitely.
    """
    x_arr = np.asarray(x, dtype=float)
    y_arr = np.asarray(y, dtype=float)
    x_arr, y_arr = np.broadcast_arrays(x_arr, y_arr)
    out = np.zeros(x_arr.shape, dtype=float)
    mask = x_arr != 0
    with np.errstate(divide="ignore"):
        out[mask] = x_arr[mask] * np.log(y_arr[mask])
    return out
