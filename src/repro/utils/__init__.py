"""Shared validation and numerical helpers."""

from repro.utils.validation import (
    check_array,
    check_confidence,
    check_in_range,
    check_positive,
    check_probability_vector,
    check_random_state,
)
from repro.utils.numerics import (
    log_mean_exp,
    logsumexp,
    normalize_log_weights,
    softmax,
    stable_log,
    xlogx,
    xlogy,
)

__all__ = [
    "check_array",
    "check_confidence",
    "check_in_range",
    "check_positive",
    "check_probability_vector",
    "check_random_state",
    "log_mean_exp",
    "logsumexp",
    "normalize_log_weights",
    "softmax",
    "stable_log",
    "xlogx",
    "xlogy",
]
