"""Argument validation helpers used across the library.

These functions raise :class:`repro.exceptions.ValidationError` (a subclass
of ``ValueError``) with descriptive messages, so every public entry point
can validate its inputs in one line each.
"""

from __future__ import annotations

import numbers

import numpy as np

from repro.exceptions import NotNormalizedError, ValidationError

#: Absolute tolerance used when checking that probabilities sum to one.
PROBABILITY_ATOL = 1e-8


def check_random_state(seed) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    Parameters
    ----------
    seed:
        ``None`` (fresh nondeterministic generator), an ``int`` seed, a
        ``numpy.random.Generator`` (returned unchanged), or a legacy
        ``numpy.random.RandomState`` (wrapped).
    """
    if seed is None:
        return np.random.default_rng()
    if isinstance(seed, np.random.Generator):
        return seed
    if isinstance(seed, numbers.Integral):
        return np.random.default_rng(int(seed))
    if isinstance(seed, np.random.RandomState):
        # Bridge legacy RandomState into the Generator API.
        return np.random.default_rng(seed.randint(0, 2**32 - 1))
    raise ValidationError(
        f"cannot construct a random generator from {seed!r}"
    )


def check_array(
    value,
    *,
    name: str = "array",
    ndim: int | None = None,
    dtype=float,
    allow_empty: bool = False,
) -> np.ndarray:
    """Coerce ``value`` to a finite ndarray and validate its shape.

    Raises
    ------
    ValidationError
        If the array contains NaN/inf, has the wrong number of dimensions,
        or is empty while ``allow_empty`` is false.
    """
    arr = np.asarray(value, dtype=dtype)
    if ndim is not None and arr.ndim != ndim:
        raise ValidationError(
            f"{name} must be {ndim}-dimensional, got shape {arr.shape}"
        )
    if not allow_empty and arr.size == 0:
        raise ValidationError(f"{name} must not be empty")
    if np.issubdtype(arr.dtype, np.floating) and not np.all(np.isfinite(arr)):
        raise ValidationError(f"{name} must contain only finite values")
    return arr


def check_positive(value, *, name: str = "value", strict: bool = True) -> float:
    """Validate that a scalar is (strictly) positive and finite."""
    if not isinstance(value, numbers.Real):
        raise ValidationError(f"{name} must be a real number, got {value!r}")
    value = float(value)
    if not np.isfinite(value):
        raise ValidationError(f"{name} must be finite, got {value}")
    if strict and value <= 0:
        raise ValidationError(f"{name} must be > 0, got {value}")
    if not strict and value < 0:
        raise ValidationError(f"{name} must be >= 0, got {value}")
    return value


def check_in_range(
    value,
    *,
    name: str = "value",
    low: float = -np.inf,
    high: float = np.inf,
    inclusive: bool = True,
) -> float:
    """Validate that a scalar lies in ``[low, high]`` (or ``(low, high)``)."""
    if not isinstance(value, numbers.Real):
        raise ValidationError(f"{name} must be a real number, got {value!r}")
    value = float(value)
    if inclusive:
        ok = low <= value <= high
        bounds = f"[{low}, {high}]"
    else:
        ok = low < value < high
        bounds = f"({low}, {high})"
    if not ok:
        raise ValidationError(f"{name} must lie in {bounds}, got {value}")
    return value


def check_confidence(value, *, name: str = "confidence") -> float:
    """Validate a probability-like level lying strictly in ``(0, 1)``.

    Used for confidence levels and event probabilities in the statistical
    audit harness, where the degenerate endpoints (a 0%- or 100%-confident
    statement) make the certified bounds meaningless.
    """
    value = check_in_range(value, name=name, low=0.0, high=1.0, inclusive=False)
    return value


def check_probability_vector(value, *, name: str = "probabilities") -> np.ndarray:
    """Validate a 1-D nonnegative vector summing to one.

    Returns the validated vector renormalized exactly (dividing by its sum)
    so downstream exact computations do not accumulate the input's rounding
    slack.
    """
    arr = check_array(value, name=name, ndim=1)
    if np.any(arr < 0):
        raise ValidationError(f"{name} must be nonnegative")
    total = float(arr.sum())
    if not np.isclose(total, 1.0, atol=PROBABILITY_ATOL):
        raise NotNormalizedError(
            f"{name} must sum to 1 (got {total:.12g})"
        )
    return arr / total
