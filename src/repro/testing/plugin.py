"""Pytest plugin for the statistical test tier.

Loaded via ``pytest_plugins = ("repro.testing.plugin",)`` in the root
``conftest.py``. It provides:

* the ``statistical`` marker — select the tier with ``pytest -m
  statistical``; ``@pytest.mark.statistical(retries=N)`` additionally
  reruns a failing test up to ``N`` times (whole-test flake control on
  top of the per-audit retries inside :func:`repro.testing.assert_dp`);
* the ``statistical_policy`` fixture — the tier's
  :class:`~repro.testing.statistical.StatisticalPolicy`;
* the ``statistical_rng`` fixture — a ``numpy.random.Generator`` seeded
  deterministically from the test's node id and its current rerun
  attempt, so every test gets an independent, reproducible stream.
"""

from __future__ import annotations

import pytest

from repro.testing.statistical import DEFAULT_POLICY, StatisticalPolicy
from repro.utils.validation import check_random_state


def pytest_configure(config) -> None:
    """Register the ``statistical`` marker (idempotent with pytest.ini).

    Parameters
    ----------
    config:
        The pytest configuration object.
    """
    config.addinivalue_line(
        "markers",
        "statistical(retries=0): tier-2 seeded Monte-Carlo DP audit; "
        "rerun up to `retries` times on failure before reporting",
    )


def pytest_runtest_protocol(item, nextitem):
    """Bounded rerun protocol for ``@pytest.mark.statistical(retries=N)``.

    Runs the standard test protocol up to ``retries + 1`` times, exposing
    the zero-based attempt counter as ``item.statistical_attempt`` (which
    reseeds the ``statistical_rng`` fixture), and reports only the final
    attempt — deterministic, since every attempt's seed is derived.

    Parameters
    ----------
    item:
        The collected test item.
    nextitem:
        The following item (forwarded to teardown logic).
    """
    marker = item.get_closest_marker("statistical")
    if marker is None:
        return None
    retries = int(marker.kwargs.get("retries", 0))
    if retries <= 0:
        return None
    from _pytest.runner import runtestprotocol

    item.ihook.pytest_runtest_logstart(
        nodeid=item.nodeid, location=item.location
    )
    reports = []
    for attempt in range(retries + 1):
        item.statistical_attempt = attempt
        reports = runtestprotocol(item, nextitem=nextitem, log=False)
        if not any(report.failed for report in reports):
            break
    for report in reports:
        item.ihook.pytest_runtest_logreport(report=report)
    item.ihook.pytest_runtest_logfinish(
        nodeid=item.nodeid, location=item.location
    )
    return True


@pytest.fixture(scope="session")
def statistical_policy() -> StatisticalPolicy:
    """The policy the statistical tier runs under."""
    return DEFAULT_POLICY


@pytest.fixture
def statistical_rng(request):
    """Deterministic per-test Generator, reseeded on marker-driven reruns."""
    attempt = getattr(request.node, "statistical_attempt", 0)
    seed = DEFAULT_POLICY.seed_for(request.node.nodeid, attempt)
    return check_random_state(seed)
