"""Worst-case neighbouring dataset pairs, one generator per mechanism family.

A statistical audit is only as sharp as the neighbour pair it probes: the
DP inequality is a *worst-case* statement, and most pairs are slack. The
generators here produce the pairs that saturate (or come closest to
saturating) each mechanism family's guarantee under the substitution
relation of Definition 2.1:

* counting / sum queries — change one record from the low extreme to the
  high extreme, displacing the true answer by exactly the sensitivity;
* per-record randomizers (randomized response) — a single record, flipped;
* quality-based selection (exponential mechanism, report-noisy-max) — flip
  one record so two candidates' quality scores move in opposite
  directions, the configuration that maximizes the output-law tilt.
"""

from __future__ import annotations

from collections.abc import Iterator, Sequence
from dataclasses import dataclass

from repro.exceptions import ValidationError
from repro.privacy.definitions import all_neighbour_pairs, is_neighbour


@dataclass(frozen=True)
class NeighborPair:
    """An ordered pair of neighbouring datasets with a provenance label.

    Parameters
    ----------
    a, b:
        The two datasets; for sequence datasets they differ in exactly one
        record (checked by :meth:`validate`).
    name:
        Short label describing why this pair is adversarial, carried into
        audit reports.
    """

    a: tuple
    b: tuple
    name: str = ""

    def validate(self) -> "NeighborPair":
        """Check the substitution relation; return self for chaining."""
        if not is_neighbour(self.a, self.b):
            # Data-free message: the pair contents are (synthetic) datasets;
            # keep dataset values out of exception text on principle.
            raise ValidationError(
                "datasets are not neighbours under substitution: they must "
                "have equal length and differ in exactly one position"
            )
        return self

    def swapped(self) -> "NeighborPair":
        """The same pair with the roles of ``a`` and ``b`` exchanged."""
        return NeighborPair(self.b, self.a, name=f"{self.name} (swapped)")


def bit_flip_pair(n: int, position: int = 0) -> NeighborPair:
    """All-zeros vs one bit flipped — worst case for per-record and
    counting mechanisms on binary data.

    Parameters
    ----------
    n:
        Dataset size.
    position:
        Index of the flipped record.
    """
    if n < 1:
        raise ValidationError("n must be >= 1")
    if not 0 <= position < n:
        raise ValidationError("position must index into the dataset")
    a = (0,) * n
    b = tuple(1 if i == position else 0 for i in range(n))
    return NeighborPair(a, b, name=f"bit-flip@{position}/n={n}").validate()


def extreme_record_pair(
    n: int, low: float = 0.0, high: float = 1.0, position: int = 0
) -> NeighborPair:
    """All-``low`` vs one record at ``high`` — saturates a sum query.

    Moving one record across the full data range displaces a sum (or any
    1-Lipschitz aggregate) by exactly ``high - low``, the query's global
    sensitivity, so no other substitution shifts the output law further.

    Parameters
    ----------
    n:
        Dataset size.
    low, high:
        The record domain's extremes (``low < high``).
    position:
        Index of the extreme record.
    """
    if n < 1:
        raise ValidationError("n must be >= 1")
    if not 0 <= position < n:
        raise ValidationError("position must index into the dataset")
    if not float(low) < float(high):
        raise ValidationError("low must be strictly below high")
    a = (float(low),) * n
    b = tuple(
        float(high) if i == position else float(low) for i in range(n)
    )
    return NeighborPair(
        a, b, name=f"extreme-record@{position}/n={n}"
    ).validate()


def score_gap_pair(n: int) -> NeighborPair:
    """Binary pair maximizing the quality gap of candidate-counting scores.

    For selection mechanisms whose quality of candidate ``u`` is the count
    of records equal to ``u`` (sensitivity 1), flipping one record moves
    two candidates' scores by one *in opposite directions* — the steepest
    possible tilt of the output law, hence the worst neighbour pair.

    Parameters
    ----------
    n:
        Dataset size.
    """
    return NeighborPair(
        bit_flip_pair(n).a, bit_flip_pair(n).b, name=f"score-gap/n={n}"
    ).validate()


def substitution_pairs(
    universe: Sequence, n: int
) -> Iterator[NeighborPair]:
    """Every ordered substitution pair on a finite universe, labelled.

    Wraps :func:`repro.privacy.all_neighbour_pairs` into
    :class:`NeighborPair` objects — exhaustive (exponential in ``n``), for
    the small universes where an audit can afford to try every pair.

    Parameters
    ----------
    universe:
        The record domain.
    n:
        Dataset size.
    """
    for index, (a, b) in enumerate(all_neighbour_pairs(universe, n)):
        yield NeighborPair(a, b, name=f"substitution#{index}")
