"""Statistical test policy: seeds, tolerances, retries, sample sizes.

Monte-Carlo verification of a privacy guarantee is a hypothesis test, and a
test suite full of hypothesis tests needs an explicit policy or it flakes:
every statistical test in this repository (the ``statistical`` pytest tier)
derives its seed deterministically from a stable name, certifies failures
at a declared confidence level, and retries a certified failure a bounded
number of times with a *fresh derived seed* before reporting it.

With per-audit confidence ``c`` and ``r`` retries, a correct mechanism
fails spuriously with probability at most ``(1 - c)^(r + 1)`` — at the
defaults (``c = 0.999``, ``r = 1``) that is one in a million per audit —
while a genuinely broken mechanism keeps failing every attempt because the
violation is in the distribution, not in the draw. Since all seeds are
derived (never wall-clock), the whole tier is bit-for-bit reproducible.
"""

from __future__ import annotations

import hashlib
import math
from dataclasses import dataclass

from repro.exceptions import ValidationError
from repro.utils.validation import check_confidence, check_positive

#: Default base seed for the statistical tier (the workshop date, matching
#: the fixture convention in ``tests/conftest.py``).
BASE_SEED = 20120330


def derive_seed(*parts, base_seed: int = BASE_SEED) -> int:
    """Derive a deterministic 63-bit seed from string-able parts.

    Hash-based derivation (SHA-256 over the rendered parts) gives every
    (test, attempt) pair an independent-looking stream without any global
    state: the same parts always produce the same seed, on every platform
    and in every process.

    Parameters
    ----------
    *parts:
        Values identifying the consumer (test name, attempt number, ...);
        rendered with ``repr`` before hashing.
    base_seed:
        Tier-wide base mixed into the hash, so a policy with a different
        ``base_seed`` yields disjoint streams.
    """
    digest = hashlib.sha256()
    digest.update(repr(int(base_seed)).encode())
    for part in parts:
        digest.update(b"\x1f")
        digest.update(repr(part).encode())
    return int.from_bytes(digest.digest()[:8], "big") >> 1


@dataclass(frozen=True)
class StatisticalPolicy:
    """Tier-wide knobs for statistical tests.

    Parameters
    ----------
    base_seed:
        Root of every derived seed (see :func:`derive_seed`).
    n_samples:
        Default Monte-Carlo draws per dataset in an audit.
    confidence:
        Certification level of a reported violation: a failing audit is
        wrong with probability at most ``1 - confidence``.
    max_retries:
        How many times a certified failure is retried with a fresh derived
        seed before it is reported (flake control; see module docstring).
    tolerance:
        Additive slack on the claimed ε when deciding pass/fail, absorbing
        floating-point noise in the claim itself.
    n_bins:
        Default bin count for continuous-output audits.
    """

    base_seed: int = BASE_SEED
    n_samples: int = 12_000
    confidence: float = 0.999
    max_retries: int = 1
    tolerance: float = 1e-9
    n_bins: int = 16

    def __post_init__(self) -> None:
        check_confidence(self.confidence, name="confidence")
        if self.n_samples < 2:
            raise ValidationError("n_samples must be >= 2")
        if self.max_retries < 0:
            raise ValidationError("max_retries must be >= 0")
        if self.tolerance < 0:
            raise ValidationError("tolerance must be >= 0")
        if self.n_bins < 2:
            raise ValidationError("n_bins must be >= 2")

    def seed_for(self, name: str, attempt: int = 0) -> int:
        """The derived seed for attempt ``attempt`` of the test ``name``.

        Parameters
        ----------
        name:
            Stable identifier of the test or audit.
        attempt:
            Zero-based retry counter; each attempt gets a fresh stream.
        """
        return derive_seed(name, int(attempt), base_seed=self.base_seed)

    def false_failure_probability(self) -> float:
        """Upper bound on the chance a *correct* mechanism fails the tier.

        ``(1 - confidence) ** (max_retries + 1)`` — every attempt must
        independently certify a violation for the test to report one.
        """
        return (1.0 - self.confidence) ** (self.max_retries + 1)


#: The policy the shipped statistical tier runs under.
DEFAULT_POLICY = StatisticalPolicy()


def samples_to_witness(event_probability: float, confidence: float) -> int:
    """Draws needed to observe an event at least once with high probability.

    Solves ``1 - (1 - p)^n >= confidence`` for ``n``: the minimum number of
    i.i.d. draws so that an event of probability ``event_probability``
    appears at least once with probability ``confidence``. A violation
    concentrated on an event the sampler never sees is invisible to any
    frequency-based audit, so this is the floor on audit sample sizes.

    Parameters
    ----------
    event_probability:
        Probability of the rarest event the audit must be able to see.
    confidence:
        Required probability of witnessing it at least once.
    """
    probability = check_confidence(event_probability, name="event_probability")
    confidence = check_confidence(confidence, name="confidence")
    return int(math.ceil(math.log1p(-confidence) / math.log1p(-probability)))


def samples_to_separate(
    p: float,
    q: float,
    target_epsilon: float,
    confidence: float,
) -> int:
    """Per-dataset draws for a certified log-ratio above ``target_epsilon``.

    If an event truly has probabilities ``p`` and ``q`` on the two
    neighbouring datasets with ``log(p/q) > target_epsilon``, this returns
    a sample size at which Hoeffding confidence bounds at level
    ``confidence`` separate the certified lower bound
    ``log((p - w) / (q + w))`` from ``target_epsilon``, where
    ``w = sqrt(log(1/alpha) / (2 n))``. Hoeffding is looser than the
    Clopper–Pearson bounds the auditor actually uses, so the answer is a
    safe (conservative) planning figure.

    Parameters
    ----------
    p:
        True event probability on the first dataset.
    q:
        True event probability on the second dataset (``q < p``).
    target_epsilon:
        The claimed ε the audit must certifiably exceed.
    confidence:
        Certification level of the audit.

    Raises
    ------
    ValidationError
        If the true log-ratio does not exceed ``target_epsilon`` — no
        sample size can certify a separation that is not there.
    """
    p = check_confidence(p, name="p")
    q = check_confidence(q, name="q")
    target_epsilon = check_positive(target_epsilon, name="target_epsilon")
    confidence = check_confidence(confidence, name="confidence")
    if math.log(p / q) <= target_epsilon:
        raise ValidationError(
            "log(p/q) must exceed target_epsilon for a separation to exist"
        )
    alpha = 1.0 - confidence
    n = 16
    while n < 2**34:
        width = math.sqrt(math.log(1.0 / alpha) / (2.0 * n))
        if p - width > 0 and math.log((p - width) / (q + width)) > target_epsilon:
            return n
        n *= 2
    raise ValidationError(
        "no feasible sample size below 2^34; the margin is too thin"
    )
