"""Empirical ε estimation: event-frequency audits with certified bounds.

The estimator behind :func:`assert_dp`. Given samples of a mechanism's
output on a neighbouring pair ``(A, B)``, ε-DP bounds every event ``E`` by
``P_A(E) <= e^ε · P_B(E)`` (and symmetrically). The audit inverts this:

1. split each sample in half — a *pilot* half that chooses candidate
   events and a *test* half that measures them (choosing events on the
   data you test on would invalidate the confidence statement);
2. from the pilot, build events: output atoms plus the empirically
   over-weighted region for discrete outputs; equal-probability bins plus
   one-sided tail unions (binned likelihood-ratio events) for continuous
   outputs — binning is post-processing, so the DP inequality must still
   hold on every binned event;
3. on the test half, bound each event's probabilities with Clopper–Pearson
   intervals, Bonferroni-corrected across all events and both directions,
   and report ``max_E log(lower(P_A(E)) / upper(P_B(E)))`` — a *certified
   lower bound* on the true ε: if it exceeds the claimed ε, the claim is
   false with probability at least the audit's confidence.

A sampled audit can refute a guarantee but never prove it (Theorem 4.1-
style statements quantify over all pairs and all events); passing means
"no violation detectable at this sample size on this pair".
"""

from __future__ import annotations

import json
import math
from collections import Counter
from collections.abc import Callable, Sequence
from dataclasses import dataclass, field

import numpy as np

from repro.exceptions import DPAuditError, ValidationError
from repro.mechanisms.base import Mechanism
from repro.observability import tracer as _trace
from repro.testing.neighbors import NeighborPair
from repro.testing.statistical import DEFAULT_POLICY, StatisticalPolicy
from repro.utils.validation import (
    check_confidence,
    check_positive,
    check_random_state,
)

try:  # SciPy is optional: exact Beta quantiles when present.
    from scipy.stats import beta as _beta_distribution
except ImportError:  # pragma: no cover - exercised via the method switch
    _beta_distribution = None


def clopper_pearson_interval(
    successes: int,
    trials: int,
    *,
    confidence: float = 0.999,
    method: str = "auto",
) -> tuple[float, float]:
    """Two-sided Clopper–Pearson confidence interval for a proportion.

    The exact (conservative) binomial interval: lower endpoint
    ``Beta(α/2; k, n-k+1)``, upper endpoint ``Beta(1-α/2; k+1, n-k)``,
    with the conventional endpoints 0 at ``k = 0`` and 1 at ``k = n``.

    Parameters
    ----------
    successes:
        Observed event count ``k``.
    trials:
        Number of draws ``n``.
    confidence:
        Two-sided coverage level ``1 - α``.
    method:
        ``"beta"`` (exact, needs SciPy), ``"hoeffding"`` (distribution-free
        fallback ``p̂ ± sqrt(log(2/α) / 2n)``), or ``"auto"`` (beta when
        SciPy is importable).
    """
    if trials < 1:
        raise ValidationError("trials must be >= 1")
    if not 0 <= successes <= trials:
        raise ValidationError("successes must lie in [0, trials]")
    confidence = check_confidence(confidence, name="confidence")
    if method == "auto":
        method = "beta" if _beta_distribution is not None else "hoeffding"
    alpha = 1.0 - confidence
    k, n = int(successes), int(trials)
    if method == "beta":
        if _beta_distribution is None:
            raise ValidationError("SciPy is unavailable; use method='hoeffding'")
        low = 0.0 if k == 0 else float(_beta_distribution.ppf(alpha / 2, k, n - k + 1))
        high = 1.0 if k == n else float(_beta_distribution.ppf(1 - alpha / 2, k + 1, n - k))
    elif method == "hoeffding":
        width = math.sqrt(math.log(2.0 / alpha) / (2.0 * n))
        low = max(0.0, k / n - width)
        high = min(1.0, k / n + width)
    else:
        raise ValidationError(f"unknown method {method!r}")
    return (low, high)


@dataclass
class StatisticalAuditReport:
    """Outcome of one statistical ε audit on one neighbour pair.

    Attributes
    ----------
    mechanism:
        Display name of the audited mechanism.
    pair_name:
        Label of the neighbour pair probed.
    claimed_epsilon:
        The guarantee under test.
    epsilon_lower_bound:
        Certified lower bound on the true ε at ``confidence`` (0.0 when no
        event separates the two laws).
    point_estimate:
        Smoothed plug-in estimate of the worst log-ratio (uncertified;
        for diagnostics only).
    confidence:
        Certification level, after Bonferroni correction across all events
        and both directions.
    n_samples:
        Draws per dataset (pilot + test halves together).
    n_events:
        Events tested on the test half.
    worst_event:
        Label of the event achieving the certified bound.
    kind:
        ``"discrete"`` (atom events) or ``"binned"`` (continuous outputs).
    satisfied:
        ``epsilon_lower_bound <= claimed_epsilon + tolerance``.
    details:
        Extras (per-event tables capped for readability).
    """

    mechanism: str
    pair_name: str
    claimed_epsilon: float
    epsilon_lower_bound: float
    point_estimate: float
    confidence: float
    n_samples: int
    n_events: int
    worst_event: str
    kind: str
    satisfied: bool
    details: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        """JSON-serializable representation (used by ``repro audit``)."""
        payload = {
            "mechanism": self.mechanism,
            "pair": self.pair_name,
            "claimed_epsilon": self.claimed_epsilon,
            "epsilon_lower_bound": self.epsilon_lower_bound,
            "point_estimate": self.point_estimate,
            "confidence": self.confidence,
            "n_samples": self.n_samples,
            "n_events": self.n_events,
            "worst_event": self.worst_event,
            "kind": self.kind,
            "satisfied": self.satisfied,
        }
        json.dumps(payload)  # fail loudly here, not in the CLI
        return payload

    def __str__(self) -> str:
        verdict = "ok" if self.satisfied else "VIOLATION"
        return (
            f"audit[{self.kind}] {self.mechanism} on {self.pair_name}: "
            f"certified ε ≥ {self.epsilon_lower_bound:.4f} "
            f"(claimed {self.claimed_epsilon:.4g}, point est. "
            f"{self.point_estimate:.4f}, {self.n_samples} samples/side, "
            f"{self.n_events} events) — {verdict}"
        )


def _default_key(output):
    """Hashable representative of one mechanism output."""
    if isinstance(output, np.ndarray):
        return tuple(output.tolist())
    if isinstance(output, (list, tuple)):
        return tuple(output)
    if isinstance(output, (np.floating, np.integer)):
        return output.item()
    return output


def _draw_outputs(
    mechanism, dataset, size, rng, sampler, output_key
) -> list:
    """``size`` keyed outputs of ``mechanism`` on ``dataset``.

    Without a custom ``sampler`` the draws go through the mechanism's
    batched ``release_many`` (vectorized kernels where the family has
    one, a serial loop otherwise) — stream-identical to ``size``
    sequential ``release`` calls, so audit results are unchanged while
    audit-scale sampling runs at numpy speed.
    """
    key = output_key or _default_key
    if sampler is not None:
        raw = sampler(dataset, size, rng)
    else:
        raw = mechanism.release_many(dataset, size, random_state=rng)
    if isinstance(raw, np.ndarray):
        raw = raw.tolist()
    outputs = list(raw)
    if len(outputs) != size:
        raise ValidationError(
            f"sampler returned {len(outputs)} outputs, expected {size}"
        )
    return [key(o) for o in outputs]


def _resolve_kind(kind: str, keys_a, keys_b, n_samples: int) -> str:
    """Choose discrete vs binned events for ``kind='auto'``."""
    if kind in ("discrete", "binned"):
        return kind
    if kind != "auto":
        raise ValidationError("kind must be 'auto', 'discrete', or 'binned'")
    distinct = len(set(keys_a) | set(keys_b))
    numeric = all(
        isinstance(k, (int, float)) and not isinstance(k, bool)
        for k in keys_a[:64] + keys_b[:64]
    )
    if numeric and distinct > max(32, n_samples // 50):
        return "binned"
    return "discrete"


def _discrete_events(pilot_a, pilot_b, max_events: int):
    """Candidate events from the pilot halves: atoms + tilted regions.

    Returns ``(labels, membership_fn)`` where ``membership_fn(keys)`` maps
    a keyed sample to a ``(n_events, len(keys))`` boolean matrix.
    """
    counts_a = Counter(pilot_a)
    counts_b = Counter(pilot_b)
    support = sorted(set(counts_a) | set(counts_b), key=repr)
    total_a = max(1, len(pilot_a))
    total_b = max(1, len(pilot_b))

    def gap(atom):
        return abs(
            counts_a.get(atom, 0) / total_a - counts_b.get(atom, 0) / total_b
        )

    atoms = sorted(support, key=gap, reverse=True)[:max_events]
    over = frozenset(
        atom
        for atom in support
        if counts_a.get(atom, 0) / total_a > counts_b.get(atom, 0) / total_b
    )
    under = frozenset(
        atom
        for atom in support
        if counts_a.get(atom, 0) / total_a < counts_b.get(atom, 0) / total_b
    )
    events: list[tuple[str, frozenset]] = [
        (f"{{{atom!r}}}", frozenset([atom])) for atom in atoms
    ]
    if over and over != frozenset(support):
        events.append(("pilot-over-weighted region", over))
    if under and under != frozenset(support):
        events.append(("pilot-under-weighted region", under))
    labels = [label for label, _ in events]
    sets = [s for _, s in events]

    def membership(keys: list) -> np.ndarray:
        matrix = np.zeros((len(sets), len(keys)), dtype=bool)
        for row, atom_set in enumerate(sets):
            matrix[row] = [k in atom_set for k in keys]
        return matrix

    return labels, membership


def _binned_events(pilot_a, pilot_b, n_bins: int):
    """Bins + one-sided tail unions from the pooled pilot halves.

    Bin edges are equal-probability quantiles of the pooled pilot sample;
    events are every bin plus every left tail ``(-inf, edge)`` and right
    tail ``[edge, inf)`` — the binned analogue of one-sided likelihood-
    ratio (threshold) tests, which catch location shifts that no single
    narrow bin certifies on its own.
    """
    pooled = np.asarray(list(pilot_a) + list(pilot_b), dtype=float)
    if float(np.ptp(pooled)) == 0.0:
        raise ValidationError(
            "continuous audit found a constant pilot sample; "
            "use kind='discrete'"
        )
    quantiles = np.linspace(0.0, 1.0, n_bins + 1)[1:-1]
    edges = np.unique(np.quantile(pooled, quantiles))
    labels: list[str] = []
    events: list[tuple[int, int]] = []  # half-open bin-index ranges
    n_cells = edges.size + 1
    for i in range(n_cells):
        lo = f"{edges[i - 1]:.4g}" if i > 0 else "-inf"
        hi = f"{edges[i]:.4g}" if i < edges.size else "inf"
        labels.append(f"bin [{lo}, {hi})")
        events.append((i, i + 1))
    for i in range(1, n_cells):
        labels.append(f"x < {edges[i - 1]:.4g}")
        events.append((0, i))
        labels.append(f"x >= {edges[i - 1]:.4g}")
        events.append((i, n_cells))

    def membership(keys: list) -> np.ndarray:
        cells = np.searchsorted(edges, np.asarray(keys, dtype=float), side="right")
        matrix = np.zeros((len(events), len(keys)), dtype=bool)
        for row, (lo, hi) in enumerate(events):
            matrix[row] = (cells >= lo) & (cells < hi)
        return matrix

    return labels, membership


def estimate_epsilon_lower_bound(
    outputs_a: Sequence,
    outputs_b: Sequence,
    *,
    confidence: float = 0.999,
    kind: str = "auto",
    n_bins: int = 16,
    max_events: int = 64,
    method: str = "auto",
) -> dict:
    """Certified lower bound on ε from two output samples.

    Implements the split/event/Clopper–Pearson scheme in the module
    docstring and returns a dict with keys ``epsilon_lower_bound``,
    ``point_estimate``, ``worst_event``, ``n_events``, ``kind``, and
    ``per_event`` (the worst few events, for diagnostics).

    Parameters
    ----------
    outputs_a, outputs_b:
        Hashable (or float, for binned audits) outputs drawn i.i.d. from
        the mechanism on each dataset of a neighbouring pair.
    confidence:
        Overall certification level; Bonferroni-divided internally across
        events and directions.
    kind:
        ``"discrete"``, ``"binned"``, or ``"auto"``.
    n_bins:
        Bin count for binned audits.
    max_events:
        Cap on atom events for discrete audits.
    method:
        Interval method forwarded to :func:`clopper_pearson_interval`.
    """
    confidence = check_confidence(confidence, name="confidence")
    keys_a = list(outputs_a)
    keys_b = list(outputs_b)
    n = min(len(keys_a), len(keys_b))
    if n < 4:
        raise ValidationError("need at least 4 samples per dataset")
    # Strided pilot/test split: valid for i.i.d. draws like any fixed
    # index split, and unbiased even if a caller hands in sorted outputs.
    pilot_a, test_a = keys_a[0:n:2], keys_a[1:n:2]
    pilot_b, test_b = keys_b[0:n:2], keys_b[1:n:2]

    resolved = _resolve_kind(kind, keys_a, keys_b, n)
    if resolved == "discrete":
        labels, membership = _discrete_events(pilot_a, pilot_b, max_events)
    else:
        labels, membership = _binned_events(pilot_a, pilot_b, n_bins)

    counts_a = membership(test_a).sum(axis=1)
    counts_b = membership(test_b).sum(axis=1)
    n_test_a, n_test_b = len(test_a), len(test_b)
    n_events = len(labels)
    # Bonferroni over every event in both directions: each of the 2·k
    # one-sided comparisons runs at level (1-confidence) / (2 k), so the
    # chance that ANY certified bound overshoots the truth is ≤ 1-confidence.
    alpha_each = (1.0 - confidence) / (2.0 * n_events)
    per_comparison_confidence = 1.0 - alpha_each

    best = 0.0
    best_label = "(none)"
    point = 0.0
    rows = []
    for label, k_a, k_b in zip(labels, counts_a, counts_b):
        low_a, high_a = clopper_pearson_interval(
            int(k_a), n_test_a, confidence=per_comparison_confidence, method=method
        )
        low_b, high_b = clopper_pearson_interval(
            int(k_b), n_test_b, confidence=per_comparison_confidence, method=method
        )
        bounds = []
        if low_a > 0 and high_b > 0:
            bounds.append(math.log(low_a / high_b))
        if low_b > 0 and high_a > 0:
            bounds.append(math.log(low_b / high_a))
        certified = max(bounds) if bounds else 0.0
        # Smoothed plug-in estimate (add-1/2), uncertified diagnostics.
        p_hat = (k_a + 0.5) / (n_test_a + 1.0)
        q_hat = (k_b + 0.5) / (n_test_b + 1.0)
        observed = abs(math.log(p_hat / q_hat))
        point = max(point, observed)
        rows.append((certified, observed, label, int(k_a), int(k_b)))
        if certified > best:
            best = certified
            best_label = label

    rows.sort(reverse=True)
    return {
        "epsilon_lower_bound": float(best),
        "point_estimate": float(point),
        "worst_event": best_label,
        "n_events": n_events,
        "kind": resolved,
        "per_event": [
            {
                "event": label,
                "certified": certified,
                "observed": observed,
                "count_a": k_a,
                "count_b": k_b,
            }
            for certified, observed, label, k_a, k_b in rows[:8]
        ],
    }


def audit_mechanism(
    mechanism: Mechanism,
    pair: NeighborPair,
    *,
    epsilon: float | None = None,
    n_samples: int = 12_000,
    confidence: float = 0.999,
    kind: str = "auto",
    n_bins: int = 16,
    max_events: int = 64,
    tolerance: float = 1e-9,
    random_state=None,
    sampler: Callable | None = None,
    output_key: Callable | None = None,
    name: str | None = None,
) -> StatisticalAuditReport:
    """Run one statistical ε audit of ``mechanism`` on ``pair``.

    Parameters
    ----------
    mechanism:
        Any :class:`~repro.mechanisms.Mechanism` (or object exposing
        ``release(dataset, random_state=...)`` plus ``privacy``).
    pair:
        The neighbouring datasets to probe (see
        :mod:`repro.testing.neighbors` for worst-case generators).
    epsilon:
        Claimed guarantee; defaults to ``mechanism.privacy.epsilon``.
    n_samples:
        Draws per dataset (half pilot, half test).
    confidence:
        Certification level of a reported violation.
    kind:
        Event family: ``"discrete"``, ``"binned"``, or ``"auto"``.
    n_bins:
        Bin count for binned audits.
    max_events:
        Atom-event cap for discrete audits.
    tolerance:
        Additive slack on the claim when deciding ``satisfied``.
    random_state:
        Seed or Generator; fix it for a deterministic audit.
    sampler:
        Optional fast path ``sampler(dataset, size, rng) -> outputs``
        replacing a Python ``release`` loop; must draw from the same
        output law as ``mechanism.release``.
    output_key:
        Maps one raw output to a hashable key (arrays become tuples by
        default).
    name:
        Display name for the report (defaults to the class name).
    """
    if epsilon is None:
        epsilon = mechanism.privacy.epsilon
    epsilon = check_positive(epsilon, name="epsilon")
    if n_samples < 8:
        raise ValidationError("n_samples must be >= 8")
    confidence = check_confidence(confidence, name="confidence")
    rng = check_random_state(random_state)
    audit_name = name or type(mechanism).__name__
    with _trace.span(
        f"audit:{audit_name}", pair=pair.name or "(unnamed pair)"
    ):
        outputs_a = _draw_outputs(
            mechanism, pair.a, n_samples, rng, sampler, output_key
        )
        outputs_b = _draw_outputs(
            mechanism, pair.b, n_samples, rng, sampler, output_key
        )
        tracer = _trace.current()
        if tracer is not None:
            tracer.count("audit.trials")
            tracer.count("audit.draws", 2 * n_samples)
        estimate = estimate_epsilon_lower_bound(
            outputs_a,
            outputs_b,
            confidence=confidence,
            kind=kind,
            n_bins=n_bins,
            max_events=max_events,
        )
    bound = estimate["epsilon_lower_bound"]
    return StatisticalAuditReport(
        mechanism=audit_name,
        pair_name=pair.name or "(unnamed pair)",
        claimed_epsilon=float(epsilon),
        epsilon_lower_bound=bound,
        point_estimate=estimate["point_estimate"],
        confidence=confidence,
        n_samples=int(n_samples),
        n_events=estimate["n_events"],
        worst_event=estimate["worst_event"],
        kind=estimate["kind"],
        satisfied=bool(bound <= float(epsilon) + tolerance),
        details={"per_event": estimate["per_event"]},
    )


def assert_dp(
    mechanism: Mechanism,
    pair: NeighborPair,
    *,
    epsilon: float | None = None,
    policy: StatisticalPolicy | None = None,
    name: str | None = None,
    **audit_options,
) -> StatisticalAuditReport:
    """Assert that a mechanism honours its claimed ε on a neighbour pair.

    The test-facing entry point: runs :func:`audit_mechanism` under the
    statistical policy (derived seeds, policy sample size and confidence)
    and retries a certified failure up to ``policy.max_retries`` times with
    fresh derived seeds before raising — see
    :mod:`repro.testing.statistical` for why that bounds the flake rate at
    ``(1 - confidence)^(retries + 1)`` without masking real violations.

    Parameters
    ----------
    mechanism:
        The mechanism under audit.
    pair:
        Neighbouring datasets to probe.
    epsilon:
        Claimed guarantee (defaults to the mechanism's own spec).
    policy:
        Statistical policy; :data:`~repro.testing.statistical.DEFAULT_POLICY`
        when omitted.
    name:
        Stable name used for seed derivation and reporting (defaults to
        the mechanism class name).
    **audit_options:
        Forwarded to :func:`audit_mechanism` (``kind``, ``sampler``, ...).

    Returns
    -------
    StatisticalAuditReport
        The first satisfying report.

    Raises
    ------
    DPAuditError
        If every attempt certifies ``measured ε > claimed ε``; the final
        report is attached as ``error.report``.
    """
    if epsilon is not None:
        epsilon = check_positive(epsilon, name="epsilon")
    policy = policy or DEFAULT_POLICY
    audit_name = name or type(mechanism).__name__
    audit_options.setdefault("n_samples", policy.n_samples)
    audit_options.setdefault("confidence", policy.confidence)
    audit_options.setdefault("n_bins", policy.n_bins)
    audit_options.setdefault("tolerance", policy.tolerance)
    report = None
    for attempt in range(policy.max_retries + 1):
        if attempt:
            tracer = _trace.current()
            if tracer is not None:
                tracer.count("audit.retries")
        seed = policy.seed_for(audit_name, attempt)
        report = audit_mechanism(
            mechanism,
            pair,
            epsilon=epsilon,
            random_state=seed,
            name=audit_name,
            **audit_options,
        )
        if report.satisfied:
            return report
    error = DPAuditError(
        f"DP audit failed after {policy.max_retries + 1} attempt(s): {report}"
    )
    error.report = report
    raise error
