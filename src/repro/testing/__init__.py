"""Statistical verification of privacy guarantees (the tier-2 harness).

Every ε claimed in this reproduction — Theorem 4.1's Gibbs guarantee,
Theorem 2.5's exponential-mechanism bound, the Laplace mechanism — is a
falsifiable statement about output distributions on neighbouring datasets.
This package turns those statements into executable audits:

* :mod:`repro.testing.audit` — empirical ε estimation with certified
  Clopper–Pearson lower bounds (:func:`assert_dp`, :func:`audit_mechanism`);
* :mod:`repro.testing.neighbors` — worst-case neighbour pair generators
  per mechanism family;
* :mod:`repro.testing.statistical` — the test policy: derived seeds,
  confidence levels, bounded retries, sample-size calculators;
* :mod:`repro.testing.registry` — named audit cases shared by the
  ``repro audit`` CLI and the ``pytest -m statistical`` tier;
* :mod:`repro.testing.plugin` — the pytest plugin exposing the
  ``statistical`` marker and seeded fixtures.

See ``docs/TESTING.md`` for the tier layout and how to write an audit.
"""

from repro.testing.audit import (
    StatisticalAuditReport,
    assert_dp,
    audit_mechanism,
    clopper_pearson_interval,
    estimate_epsilon_lower_bound,
)
from repro.testing.neighbors import (
    NeighborPair,
    bit_flip_pair,
    extreme_record_pair,
    score_gap_pair,
    substitution_pairs,
)
from repro.testing.registry import (
    AUDIT_FAMILIES,
    PreparedAudit,
    build_audit,
    run_audit,
)
from repro.testing.statistical import (
    BASE_SEED,
    DEFAULT_POLICY,
    StatisticalPolicy,
    derive_seed,
    samples_to_separate,
    samples_to_witness,
)

__all__ = [
    "AUDIT_FAMILIES",
    "BASE_SEED",
    "DEFAULT_POLICY",
    "NeighborPair",
    "PreparedAudit",
    "StatisticalAuditReport",
    "StatisticalPolicy",
    "assert_dp",
    "audit_mechanism",
    "bit_flip_pair",
    "build_audit",
    "clopper_pearson_interval",
    "derive_seed",
    "estimate_epsilon_lower_bound",
    "extreme_record_pair",
    "run_audit",
    "samples_to_separate",
    "samples_to_witness",
    "score_gap_pair",
    "substitution_pairs",
]
