"""Named audit cases: one worst-case statistical audit per mechanism family.

Each builder pairs a concretely-parameterized mechanism with the neighbour
pair that saturates (or comes closest to saturating) its guarantee, plus
the sampling strategy the auditor should use. The same registry backs the
``repro audit`` CLI subcommand and the ``statistical`` pytest tier, so a
new mechanism family becomes auditable everywhere by adding one builder.

Every builder accepts ``noise_scale``: at 1.0 the mechanism is built
exactly as shipped; below 1.0 its noise is deliberately shrunk (a sabotage
knob) so tests and demos can confirm the audit harness actually rejects a
mis-calibrated implementation rather than passing everything.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass, replace

import numpy as np

from repro.core.gibbs import GibbsEstimator
from repro.distributions.continuous import GumbelNoise, LaplaceNoise
from repro.exceptions import ValidationError
from repro.learning import BernoulliTask, PredictorGrid
from repro.learning.losses import LogisticLoss, TruncatedLoss
from repro.mechanisms import (
    ExponentialMechanism,
    GeometricMechanism,
    LaplaceMechanism,
    Mechanism,
    RandomizedResponse,
    ReportNoisyMax,
    SparseVector,
)
from repro.testing.audit import StatisticalAuditReport, audit_mechanism
from repro.testing.neighbors import (
    NeighborPair,
    bit_flip_pair,
    extreme_record_pair,
    score_gap_pair,
)
from repro.utils.validation import check_positive


@dataclass(frozen=True)
class PreparedAudit:
    """A mechanism wired to its worst-case pair and audit strategy.

    Attributes
    ----------
    name:
        Registry key (also the seed-derivation name).
    mechanism:
        The mechanism instance under audit.
    pair:
        Worst-case neighbouring datasets for this family.
    epsilon:
        The claimed guarantee being verified.
    kind:
        Event family for the estimator (``"discrete"`` / ``"binned"``).
    sampler:
        Optional custom sampler ``(dataset, size, rng) -> outputs``. With
        the batched ``Mechanism.release_many`` path (stream-identical to
        sequential releases, vectorized per family) the built-in families
        no longer need one; the hook remains for mechanisms whose audit
        must bypass ``release`` entirely.
    output_key:
        Optional raw-output → hashable-key transform.
    note:
        One-line description of what the audit checks.
    """

    name: str
    mechanism: Mechanism
    pair: NeighborPair
    epsilon: float
    kind: str
    sampler: Callable | None = None
    output_key: Callable | None = None
    note: str = ""


def _sum_query(dataset):
    """Sum of the records — sensitivity ``high - low`` on a bounded domain."""
    return float(np.sum(np.asarray(dataset, dtype=float)))


def _count_query(dataset):
    """Number of ones — the canonical sensitivity-1 counting query."""
    return int(np.sum(np.asarray(dataset, dtype=int)))


def _match_quality(dataset, candidate):
    """Selection quality: how many records equal the candidate (Δq = 1)."""
    return float(sum(1 for record in dataset if record == candidate))


def _laplace(epsilon: float, n: int, noise_scale: float) -> PreparedAudit:
    mechanism = LaplaceMechanism(_sum_query, 1.0, epsilon)
    if noise_scale != 1.0:
        mechanism.noise = LaplaceNoise(scale=mechanism.noise.scale * noise_scale)
    return PreparedAudit(
        name="laplace",
        mechanism=mechanism,
        pair=extreme_record_pair(n),
        epsilon=mechanism.epsilon,
        kind="binned",
        note="Lap(Δf/ε) noise on a saturating sum query (Theorem 2.3)",
    )


def _geometric(epsilon: float, n: int, noise_scale: float) -> PreparedAudit:
    mechanism = GeometricMechanism(_count_query, 1.0, epsilon)
    if noise_scale != 1.0:
        mechanism.alpha = float(mechanism.alpha ** (1.0 / noise_scale))
    return PreparedAudit(
        name="geometric",
        mechanism=mechanism,
        pair=bit_flip_pair(n),
        epsilon=mechanism.epsilon,
        kind="discrete",
        note="two-sided geometric noise on a counting query",
    )


def _randomized_response(
    epsilon: float, n: int, noise_scale: float
) -> PreparedAudit:
    mechanism = RandomizedResponse(epsilon)
    if noise_scale != 1.0:
        boosted = epsilon / noise_scale
        # Stable sigmoid, same as the mechanism's own constructor.
        mechanism.truth_probability = float(1.0 / (1.0 + np.exp(-boosted)))
    return PreparedAudit(
        name="randomized-response",
        mechanism=mechanism,
        pair=NeighborPair((0,), (1,), name="single-bit flip"),
        epsilon=mechanism.epsilon,
        kind="discrete",
        output_key=lambda bits: int(np.asarray(bits).reshape(-1)[0]),
        note="Warner randomization of one bit — saturates ε exactly",
    )


def _exponential(
    epsilon: float, n: int, noise_scale: float, *, calibrated: bool = True
) -> PreparedAudit:
    mechanism = ExponentialMechanism(
        _match_quality, (0, 1), 1.0, epsilon, calibrated=calibrated
    )
    if noise_scale != 1.0:
        mechanism.scale = mechanism.scale / noise_scale
    name = "exponential" if calibrated else "exponential-paper"
    note = (
        "McSherry–Talwar selection, modern ε-DP calibration"
        if calibrated
        else "paper's raw exp(ε·q) form — Theorem 2.5's 2εΔq guarantee"
    )
    return PreparedAudit(
        name=name,
        mechanism=mechanism,
        pair=score_gap_pair(n),
        epsilon=mechanism.epsilon,
        kind="discrete",
        note=note,
    )


def _exponential_paper(
    epsilon: float, n: int, noise_scale: float
) -> PreparedAudit:
    return _exponential(epsilon, n, noise_scale, calibrated=False)


def _noisy_max(epsilon: float, n: int, noise_scale: float) -> PreparedAudit:
    mechanism = ReportNoisyMax(_match_quality, (0, 1), 1.0, epsilon)
    if noise_scale != 1.0:
        mechanism.noise = GumbelNoise(scale=mechanism.noise.scale * noise_scale)
    return PreparedAudit(
        name="noisy-max",
        mechanism=mechanism,
        pair=score_gap_pair(n),
        epsilon=mechanism.epsilon,
        kind="discrete",
        note="Gumbel report-noisy-max (= exponential mechanism's law)",
    )


def _sparse_vector(epsilon: float, n: int, noise_scale: float) -> PreparedAudit:
    mechanism = SparseVector(0.5, 1.0, epsilon, max_positives=1)
    if noise_scale != 1.0:
        mechanism._threshold_noise = LaplaceNoise(
            scale=mechanism._threshold_noise.scale * noise_scale
        )
        mechanism._query_noise = LaplaceNoise(
            scale=mechanism._query_noise.scale * noise_scale
        )
    queries = (_count_query, lambda data: len(data) - _count_query(data))
    base = bit_flip_pair(n)
    pair = NeighborPair(
        (base.a, queries), (base.b, queries), name=base.name + "+2 queries"
    )
    return PreparedAudit(
        name="sparse-vector",
        mechanism=mechanism,
        pair=pair,
        epsilon=mechanism.epsilon,
        kind="discrete",
        output_key=lambda answers: tuple(bool(a) for a in answers),
        note="AboveThreshold answer stream under the total ε₁+ε₂ budget",
    )


def _gibbs(epsilon: float, n: int, noise_scale: float) -> PreparedAudit:
    task = BernoulliTask(p=0.7)
    grid = PredictorGrid.linspace(task.loss, 0.0, 1.0, 5)
    mechanism = GibbsEstimator.from_privacy(grid, epsilon, expected_sample_size=n)
    if noise_scale != 1.0:
        mechanism.gibbs.temperature = mechanism.gibbs.temperature / noise_scale
    return PreparedAudit(
        name="gibbs",
        mechanism=mechanism,
        pair=bit_flip_pair(n),
        epsilon=mechanism.epsilon,
        kind="discrete",
        note="Theorem 4.1: the Gibbs posterior as a 2λΔ(R̂)-DP mechanism",
    )


def _local(epsilon: float, n: int, noise_scale: float) -> PreparedAudit:
    from repro.privacy.local import KRandomizedResponse

    categories = ("a", "b", "c", "d")
    mechanism = KRandomizedResponse(categories, epsilon)
    if noise_scale != 1.0:
        # Sabotage: rebuild the response probabilities for a boosted ε —
        # the report is more truthful than the claimed guarantee allows.
        boosted = epsilon / noise_scale
        k = len(categories)
        mechanism.truth_probability = float(
            np.exp(boosted) / (np.exp(boosted) + k - 1)
        )
        mechanism.lie_probability = float(1.0 / (np.exp(boosted) + k - 1))
    # Local DP: the "dataset" is one client's record; neighbours differ
    # in that single record, and p/q = e^ε makes the target exact.
    pair = NeighborPair(("a",), ("b",), name="one client, category flip")
    return PreparedAudit(
        name="local",
        mechanism=mechanism,
        pair=pair,
        epsilon=mechanism.epsilon,
        kind="discrete",
        output_key=lambda reports: reports[0],
        note="k-RR per-record channel — the p/q ratio saturates ε exactly",
    )


def _local_sampling(epsilon: float, n: int, noise_scale: float) -> PreparedAudit:
    from repro.local_privacy.mechanisms import L2SamplingMechanism

    mechanism = L2SamplingMechanism(3, epsilon)
    if noise_scale != 1.0:
        # Sabotage: raise the keep-probability past what ε allows.
        boosted = epsilon / noise_scale
        mechanism.keep_probability = float(1.0 / (1.0 + np.exp(-boosted)))
    record = np.array([1.0, 0.0, 0.0])
    pair = NeighborPair((record,), (-record,), name="antipodal unit records")
    return PreparedAudit(
        name="local-sampling",
        mechanism=mechanism,
        pair=pair,
        epsilon=mechanism.epsilon,
        kind="binned",
        output_key=lambda reports: float(np.asarray(reports).reshape(-1)[0]),
        note="DJW ℓ2 sampling mechanism — halfsphere odds saturate ε",
    )


def _langevin(epsilon: float, n: int, noise_scale: float) -> PreparedAudit:
    from repro.private_learning.langevin import RegularizedExponentialMechanism

    loss = TruncatedLoss(LogisticLoss(), ceiling=1.0)
    mechanism = RegularizedExponentialMechanism(loss, 0.5, epsilon)
    if noise_scale != 1.0:
        # Like the Gibbs sabotage knob: shrinking "noise" means inflating
        # the temperature past what the claimed ε allows.
        mechanism._temperature_scale = 1.0 / noise_scale
    # Unit-norm features on the quarter circle; the neighbour flips the
    # label of the record best aligned with the first axis, which moves
    # the posterior over θ₁ the most (the audited projection).
    angles = np.linspace(0.0, np.pi / 2.0, n)
    x = tuple(
        (float(np.cos(a)), float(np.sin(a))) for a in angles
    )
    y_a = (1,) * n
    y_b = (-1,) + (1,) * (n - 1)
    pair = NeighborPair((x, y_a), (x, y_b), name="one label flipped")
    return PreparedAudit(
        name="langevin",
        mechanism=mechanism,
        pair=pair,
        epsilon=mechanism.epsilon,
        kind="binned",
        output_key=lambda theta: float(np.asarray(theta).reshape(-1)[0]),
        note="regularized exponential mechanism over R^d via batched MALA",
    )


_BUILDERS: dict[str, Callable[[float, int, float], PreparedAudit]] = {
    "laplace": _laplace,
    "geometric": _geometric,
    "exponential": _exponential,
    "exponential-paper": _exponential_paper,
    "randomized-response": _randomized_response,
    "noisy-max": _noisy_max,
    "sparse-vector": _sparse_vector,
    "gibbs": _gibbs,
    "langevin": _langevin,
    "local": _local,
    "local-sampling": _local_sampling,
}

#: Registry keys, in audit order.
AUDIT_FAMILIES: tuple[str, ...] = tuple(_BUILDERS)


def build_audit(
    family: str,
    *,
    epsilon: float = 1.0,
    n: int = 3,
    noise_scale: float = 1.0,
) -> PreparedAudit:
    """Build the named family's mechanism + worst-case pair, ready to audit.

    Parameters
    ----------
    family:
        One of :data:`AUDIT_FAMILIES`.
    epsilon:
        Target privacy parameter for the mechanism's construction.
    n:
        Dataset size of the neighbour pair.
    noise_scale:
        1.0 builds the mechanism as shipped; values below 1.0 deliberately
        shrink its noise so the audit *should* fail (harness self-test).
    """
    epsilon = check_positive(epsilon, name="epsilon")
    noise_scale = check_positive(noise_scale, name="noise_scale")
    if n < 1:
        raise ValidationError("n must be >= 1")
    if family not in _BUILDERS:
        known = ", ".join(AUDIT_FAMILIES)
        raise ValidationError(f"unknown audit family {family!r}; known: {known}")
    prepared = _BUILDERS[family](epsilon, int(n), noise_scale)
    if noise_scale != 1.0:
        prepared = replace(prepared, name=f"{prepared.name}(noise×{noise_scale:g})")
    return prepared


def run_audit(
    prepared: PreparedAudit,
    *,
    n_samples: int = 12_000,
    confidence: float = 0.999,
    random_state=None,
) -> StatisticalAuditReport:
    """Audit a prepared case with its registered strategy.

    Parameters
    ----------
    prepared:
        A case from :func:`build_audit`.
    n_samples:
        Draws per dataset.
    confidence:
        Certification level of a reported violation.
    random_state:
        Seed or Generator for the audit's draws.
    """
    return audit_mechanism(
        prepared.mechanism,
        prepared.pair,
        epsilon=prepared.epsilon,
        n_samples=n_samples,
        confidence=confidence,
        kind=prepared.kind,
        random_state=random_state,
        sampler=prepared.sampler,
        output_key=prepared.output_key,
        name=prepared.name,
    )
