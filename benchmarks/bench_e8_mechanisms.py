"""E8 (Section 2 background, Theorems 2.3 / 2.5): mechanism guarantees.

Laplace / geometric / randomized-response / exponential mechanisms: exact
(or analytic) privacy audits against their nominal ε, plus the utility
curves (error vs ε) that make the privacy–accuracy tradeoff concrete.

Expected shape (asserted): geometric and randomized response are *sharp*
(measured == nominal); Laplace's analytic ratio equals ε in the tail; the
exponential mechanism is within but can be strictly below its budget; mean
absolute error of additive mechanisms scales as Δf/ε.
"""

import numpy as np
import pytest

from benchmarks.common import print_header
from repro.distributions import DiscreteDistribution
from repro.experiments import ResultTable
from repro.mechanisms import (
    ExponentialMechanism,
    GeometricMechanism,
    LaplaceMechanism,
    RandomizedResponse,
)
from repro.privacy import ExactPrivacyAuditor

EPSILONS = [0.1, 0.5, 1.0, 2.0]


def count_query(dataset):
    return float(sum(dataset))


def geometric_output_law(mechanism, dataset, support):
    center = int(count_query(dataset))
    probs = np.array(
        [np.exp(mechanism.noise_log_pmf(v - center)) for v in support]
    )
    return DiscreteDistribution(list(support), probs / probs.sum())


def bench_case(epsilon, error_samples=1000, seed=0):
    """Engine entry point: measured privacy loss + Laplace MAE at one ε."""
    geom = GeometricMechanism(count_query, 1.0, epsilon)
    support = range(-200, 204)
    geom_measured = (
        ExactPrivacyAuditor(
            lambda d, geom=geom: geometric_output_law(geom, d, support)
        )
        .audit([0, 1], n=3)
        .measured_epsilon
    )
    rr_measured = RandomizedResponse(epsilon).as_channel().max_log_ratio()
    lap = LaplaceMechanism(count_query, 1.0, epsilon)
    lap_measured = abs(
        lap.output_log_density([0, 0], 50.0)
        - lap.output_log_density([0, 1], 50.0)
    )
    exp_mech = ExponentialMechanism(
        lambda d, u: -abs(sum(d) - u),
        outputs=range(4),
        sensitivity=1.0,
        epsilon=epsilon,
    )
    exp_measured = (
        ExactPrivacyAuditor(exp_mech.output_distribution)
        .audit([0, 1], n=3)
        .measured_epsilon
    )
    rng = np.random.default_rng(seed)
    dataset = [1, 0, 1, 1, 0]
    truth = count_query(dataset)
    # Batched draws: stream-identical to the old per-release loop.
    releases = lap.release_many(dataset, error_samples, random_state=rng)
    lap_mae = float(np.mean(np.abs(releases - truth)))
    return {
        "measured_geometric": float(geom_measured),
        "measured_randomized_response": float(rr_measured),
        "measured_laplace": float(lap_measured),
        "measured_exponential": float(exp_measured),
        "laplace_mae": lap_mae,
        "laplace_mae_theory": float(lap.expected_absolute_error()),
    }


BENCH_SPEC = {
    "case": bench_case,
    "grid": {"epsilon": EPSILONS},
    "fixed": {"error_samples": 1000, "seed": 0},
    "seed_param": "seed",
}


def test_e8_privacy_audit_table(benchmark):
    def run():
        rows = []
        for eps in EPSILONS:
            # Geometric: exact audit over a truncated (renormalized) support
            # wide enough that truncation error is ~0.
            geom = GeometricMechanism(count_query, 1.0, eps)
            support = range(-200, 204)
            auditor = ExactPrivacyAuditor(
                lambda d, geom=geom: geometric_output_law(geom, d, support)
            )
            geom_measured = auditor.audit([0, 1], n=3).measured_epsilon

            # Randomized response: sharp 2x2 channel.
            rr = RandomizedResponse(eps)
            rr_measured = rr.as_channel().max_log_ratio()

            # Laplace: analytic worst-case ratio (tail value).
            lap = LaplaceMechanism(count_query, 1.0, eps)
            lap_measured = abs(
                lap.output_log_density([0, 0], 50.0)
                - lap.output_log_density([0, 1], 50.0)
            )

            # Exponential mechanism: exact audit on a 4-point range.
            exp_mech = ExponentialMechanism(
                lambda d, u: -abs(sum(d) - u),
                outputs=range(4),
                sensitivity=1.0,
                epsilon=eps,
            )
            exp_measured = (
                ExactPrivacyAuditor(exp_mech.output_distribution)
                .audit([0, 1], n=3)
                .measured_epsilon
            )
            rows.append(
                {
                    "epsilon": eps,
                    "geometric": geom_measured,
                    "randomized_response": rr_measured,
                    "laplace": lap_measured,
                    "exponential": exp_measured,
                }
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)

    print_header(
        "E8 / Theorems 2.3 & 2.5",
        "measured privacy loss vs nominal ε, per mechanism",
    )
    table = ResultTable(
        ["nominal eps", "geometric", "randomized resp", "laplace", "exp mech"],
        title="measured worst-case log-ratio (exact/analytic)",
    )
    for row in rows:
        table.add_row(
            row["epsilon"],
            row["geometric"],
            row["randomized_response"],
            row["laplace"],
            row["exponential"],
        )
    print(table)

    for row in rows:
        eps = row["epsilon"]
        # Sharp mechanisms: measured == nominal.
        assert row["geometric"] == pytest.approx(eps, abs=1e-6)
        assert row["randomized_response"] == pytest.approx(eps, abs=1e-9)
        assert row["laplace"] == pytest.approx(eps, abs=1e-9)
        # Exponential: within budget (possibly strictly below).
        assert row["exponential"] <= eps + 1e-9


def test_e8_utility_curves(benchmark):
    """Mean absolute error vs ε for the additive-noise mechanisms."""

    def run():
        rows = []
        rng = np.random.default_rng(0)
        dataset = [1, 0, 1, 1, 0]
        truth = count_query(dataset)
        for eps in EPSILONS:
            lap = LaplaceMechanism(count_query, 1.0, eps)
            geom = GeometricMechanism(count_query, 1.0, eps)
            lap_err = np.mean(
                np.abs(lap.release_many(dataset, 5_000, random_state=rng) - truth)
            )
            geom_err = np.mean(
                np.abs(geom.release_many(dataset, 5_000, random_state=rng) - truth)
            )
            rows.append(
                {
                    "epsilon": eps,
                    "laplace_mae": float(lap_err),
                    "laplace_theory": lap.expected_absolute_error(),
                    "geometric_mae": float(geom_err),
                }
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)

    print_header("E8b", "utility: mean absolute error vs ε (count query)")
    table = ResultTable(
        ["epsilon", "laplace MAE", "laplace theory Δf/ε", "geometric MAE"],
    )
    for row in rows:
        table.add_row(
            row["epsilon"],
            row["laplace_mae"],
            row["laplace_theory"],
            row["geometric_mae"],
        )
    print(table)

    # Error decreases with ε and matches the Δf/ε theory for Laplace.
    maes = [r["laplace_mae"] for r in rows]
    assert all(a >= b for a, b in zip(maes, maes[1:]))
    for row in rows:
        assert row["laplace_mae"] == pytest.approx(
            row["laplace_theory"], rel=0.1
        )


def test_e8_laplace_release_speed(benchmark):
    mech = LaplaceMechanism(count_query, 1.0, 1.0)
    rng = np.random.default_rng(1)
    benchmark(lambda: mech.release([1, 0, 1], random_state=rng))


def test_e8_exponential_release_speed(benchmark):
    mech = ExponentialMechanism(
        lambda d, u: -abs(sum(d) - u),
        outputs=range(64),
        sensitivity=1.0,
        epsilon=1.0,
    )
    rng = np.random.default_rng(2)
    benchmark(lambda: mech.release([1, 0, 1], random_state=rng))


def test_e8_laplace_batch_speed(benchmark):
    """Audit-sized batch (n=50k) through the vectorized Laplace kernel."""
    mech = LaplaceMechanism(count_query, 1.0, 1.0)
    rng = np.random.default_rng(1)
    benchmark.pedantic(
        lambda: mech.release_many([1, 0, 1], 50_000, random_state=rng),
        rounds=3,
        iterations=1,
    )


def test_e8_exponential_batch_speed(benchmark):
    """Audit-sized batch (n=50k) through the tilt-once exponential kernel."""
    mech = ExponentialMechanism(
        lambda d, u: -abs(sum(d) - u),
        outputs=range(64),
        sensitivity=1.0,
        epsilon=1.0,
    )
    rng = np.random.default_rng(2)
    benchmark.pedantic(
        lambda: mech.release_many([1, 0, 1], 50_000, random_state=rng),
        rounds=3,
        iterations=1,
    )
