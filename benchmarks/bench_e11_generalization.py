"""E11 (extension): privacy ⇒ low mutual information ⇒ small overfitting.

The modern payoff of the paper's Section-4 framing: the mutual information
I(Ẑ;θ) the paper identifies as the privacy-relevant leakage also *bounds
the generalization gap* (Xu–Raginsky). On the finite Bernoulli universe
everything is exact: the channel's expected generalization gap, its
mutual information, and both bounds (measured-MI route and a-priori ε
route).

Expected shape (asserted): the gap and the MI both grow with ε; the
Xu–Raginsky bound dominates the measured gap at every ε and is tighter
than the n-free privacy-chain bound; privacy demonstrably acts as a
regularizer.
"""

import numpy as np
import pytest

from benchmarks.common import print_header
from repro.core import GibbsEstimator, LearningChannel, generalization_report
from repro.distributions import DiscreteDistribution
from repro.experiments import ResultTable
from repro.learning import BernoulliTask, PredictorGrid

EPSILONS = [0.1, 0.5, 1.0, 2.0, 5.0, 20.0]
N = 3
P = 0.7


def build_report(epsilon: float) -> dict:
    task = BernoulliTask(p=P)
    grid = PredictorGrid.linspace(task.loss, 0.0, 1.0, 5)
    estimator = GibbsEstimator.from_privacy(grid, epsilon, expected_sample_size=N)
    law = DiscreteDistribution([0, 1], [1 - P, P])
    channel = LearningChannel(law, N, estimator.gibbs.posterior)
    return generalization_report(
        channel,
        true_risk=task.true_risk,
        empirical_risk=lambda sample, theta: task.empirical_risk(theta, sample),
        epsilon=epsilon,
    )


def bench_case(epsilon):
    """Engine entry point: one generalization-vs-information row."""
    report = build_report(epsilon)
    return {
        "generalization_gap": float(report["generalization_gap"]),
        "mutual_information": float(report["mutual_information"]),
        "bound_xu_raginsky": float(report["bound_xu_raginsky"]),
        "bound_privacy_chain": float(report["bound_privacy_chain"]),
    }


BENCH_SPEC = {
    "case": bench_case,
    "grid": {"epsilon": EPSILONS},
}


def test_e11_gap_vs_information(benchmark):
    rows = benchmark.pedantic(
        lambda: [(eps, build_report(eps)) for eps in EPSILONS],
        rounds=1,
        iterations=1,
    )

    print_header(
        "E11 / extension",
        "exact generalization gap vs mutual-information bounds (n=3)",
    )
    table = ResultTable(
        [
            "epsilon",
            "E[R - R̂] (exact)",
            "I(Z;theta)",
            "Xu-Raginsky bound",
            "privacy-chain bound",
        ],
    )
    gaps, infos = [], []
    for eps, report in rows:
        gaps.append(report["generalization_gap"])
        infos.append(report["mutual_information"])
        table.add_row(
            eps,
            report["generalization_gap"],
            report["mutual_information"],
            report["bound_xu_raginsky"],
            report["bound_privacy_chain"],
        )
        assert abs(report["generalization_gap"]) <= report["bound_xu_raginsky"]
        assert report["bound_xu_raginsky"] <= report["bound_privacy_chain"] + 1e-9
    print(table)

    # Privacy is regularization: both gap and leakage grow with ε.
    assert all(a <= b + 1e-12 for a, b in zip(gaps, gaps[1:]))
    assert all(a <= b + 1e-12 for a, b in zip(infos, infos[1:]))


def test_e11_gap_shrinks_with_n(benchmark):
    """At fixed ε the absolute gap shrinks as n grows (Δ(R̂) = 1/n makes
    the calibrated temperature grow, but the per-sample influence falls)."""
    task = BernoulliTask(p=P)
    grid = PredictorGrid.linspace(task.loss, 0.0, 1.0, 5)
    law = DiscreteDistribution([0, 1], [1 - P, P])

    def run():
        gaps = []
        for n in [1, 2, 3, 4]:
            estimator = GibbsEstimator.from_privacy(
                grid, 2.0, expected_sample_size=n
            )
            channel = LearningChannel(law, n, estimator.gibbs.posterior)
            report = generalization_report(
                channel,
                true_risk=task.true_risk,
                empirical_risk=lambda sample, theta: task.empirical_risk(
                    theta, sample
                ),
            )
            gaps.append((n, report["generalization_gap"],
                         report["bound_xu_raginsky"]))
        return gaps

    gaps = benchmark.pedantic(run, rounds=1, iterations=1)
    print_header("E11b", "generalization gap vs n at fixed ε = 2")
    table = ResultTable(["n", "exact gap", "Xu-Raginsky bound"])
    for n, gap, bound in gaps:
        table.add_row(n, gap, bound)
        assert abs(gap) <= bound
    print(table)
    assert gaps[-1][1] < gaps[0][1]


def test_e11_report_speed(benchmark):
    report = benchmark(lambda: build_report(1.0))
    assert report["generalization_gap"] >= -1e-12
