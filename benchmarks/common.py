"""Shared instance builders for the benchmark harness.

Every experiment runs on exactly-solvable finite instances built from the
Bernoulli prediction task (closed-form risks) so measured numbers are
estimation-noise-free wherever the paper's claims are deterministic.
"""

from __future__ import annotations

import itertools

import numpy as np

from repro.distributions import DiscreteDistribution
from repro.learning import BernoulliTask, PredictorGrid, empirical_risk_matrix


def bernoulli_instance(
    p: float = 0.7, grid_size: int = 5, n: int = 2
) -> dict:
    """A finite learning universe: Bernoulli(p) data, θ-grid on [0, 1].

    Returns the task, grid, every ordered dataset in {0,1}^n, the product-law
    source vector over datasets, and the exact empirical-risk matrix.
    """
    task = BernoulliTask(p=p)
    grid = PredictorGrid.linspace(task.loss, 0.0, 1.0, grid_size)
    datasets = list(itertools.product([0, 1], repeat=n))
    risk_matrix = empirical_risk_matrix(
        lambda theta, z: abs(theta - z),
        grid.thetas,
        [list(d) for d in datasets],
    )
    source = np.array(
        [
            np.prod([p if z == 1 else 1 - p for z in dataset])
            for dataset in datasets
        ]
    )
    data_law = DiscreteDistribution([0, 1], [1 - p, p])
    return {
        "task": task,
        "grid": grid,
        "datasets": datasets,
        "risk_matrix": risk_matrix,
        "source": source,
        "data_law": data_law,
        "n": n,
    }


def print_header(experiment_id: str, claim: str) -> None:
    """Uniform banner so bench output reads as the experiment index."""
    bar = "=" * 72
    print(f"\n{bar}\n{experiment_id}: {claim}\n{bar}")
