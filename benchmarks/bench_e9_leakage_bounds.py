"""E9 (Section 5 future work): upper bounds on I(Ẑ;θ), compared.

The paper closes by proposing to study "upper and lower bounds on the
mutual information between the sample and the predictor … similar to
Alvim et al., and compare these bounds." This bench does that comparison
for the Gibbs learning channel: measured I(Ẑ;θ) against the
group-privacy bound (n·ε), the Blahut–Arimoto channel-capacity bound, and
the source-entropy bound; plus measured min-entropy leakage against the
Alvim et al. bound.

Expected shape (asserted): every bound dominates its measured quantity.
The capacity bound — which requires knowing the channel — is uniformly
the tightest (the Gibbs channel's rows flatten with ε faster than the a
priori n·ε bound). Among the two *channel-free* bounds, n·ε wins at small
ε and the source-entropy bound H(Ẑ) wins at large ε; that crossover is
asserted.
"""

import numpy as np
import pytest

from benchmarks.common import bernoulli_instance, print_header
from repro.core import GibbsEstimator, LearningChannel
from repro.experiments import ResultTable
from repro.information import leakage_bound_report

EPSILONS = [0.05, 0.2, 0.5, 1.0, 2.0, 5.0, 20.0]


def build_report(instance, epsilon):
    estimator = GibbsEstimator.from_privacy(
        instance["grid"], epsilon, expected_sample_size=instance["n"]
    )
    channel = LearningChannel(
        instance["data_law"], instance["n"], estimator.gibbs.posterior
    )
    return leakage_bound_report(
        channel.channel,
        channel.sample_law.probabilities,
        epsilon=epsilon,
        n=instance["n"],
        universe_size=2,
    )


def bench_case(epsilon, p=0.7, grid_size=5, n=2):
    """Engine entry point: one leakage-bound report row."""
    instance = bernoulli_instance(p=p, grid_size=grid_size, n=n)
    report = build_report(instance, epsilon)
    return {
        "mutual_information": float(report["mutual_information"]),
        "bound_group_privacy": float(report["bound_group_privacy"]),
        "bound_capacity": float(report["bound_capacity"]),
        "bound_source_entropy": float(report["bound_source_entropy"]),
        "min_entropy_leakage": float(report["min_entropy_leakage"]),
        "bound_alvim_min_entropy": float(report["bound_alvim_min_entropy"]),
    }


BENCH_SPEC = {
    "case": bench_case,
    "grid": {"epsilon": EPSILONS},
    "fixed": {"p": 0.7, "grid_size": 5, "n": 2},
}


def test_e9_mi_bound_comparison(benchmark):
    instance = bernoulli_instance(p=0.7, grid_size=5, n=2)

    rows = benchmark.pedantic(
        lambda: [(eps, build_report(instance, eps)) for eps in EPSILONS],
        rounds=1,
        iterations=1,
    )

    print_header(
        "E9 / future work (§5)",
        "measured I(Ẑ;θ) vs upper bounds; Gibbs channel, n=2, |Θ|=5",
    )
    table = ResultTable(
        [
            "epsilon",
            "measured I",
            "bound n·ε",
            "bound capacity",
            "bound H(Z)",
            "tightest",
        ],
    )
    channel_free_winners = []
    for eps, report in rows:
        bounds = {
            "group": report["bound_group_privacy"],
            "capacity": report["bound_capacity"],
            "entropy": report["bound_source_entropy"],
        }
        tightest = min(bounds, key=bounds.get)
        table.add_row(
            eps,
            report["mutual_information"],
            bounds["group"],
            bounds["capacity"],
            bounds["entropy"],
            tightest,
        )
        # Validity of every bound.
        mi = report["mutual_information"]
        assert mi <= bounds["group"] + 1e-9
        assert mi <= bounds["capacity"] + 1e-6
        assert mi <= bounds["entropy"] + 1e-9
        # Knowing the channel always pays: capacity is uniformly tightest.
        assert tightest == "capacity"
        channel_free_winners.append(
            "group" if bounds["group"] <= bounds["entropy"] else "entropy"
        )
    print(table)

    # The comparison the paper asks for, among the channel-free bounds:
    # n·ε wins at small ε, H(Ẑ) wins at large ε — a visible crossover.
    assert channel_free_winners[0] == "group"
    assert channel_free_winners[-1] == "entropy"


def test_e9_min_entropy_leakage_vs_alvim(benchmark):
    instance = bernoulli_instance(p=0.7, grid_size=5, n=2)

    rows = benchmark.pedantic(
        lambda: [(eps, build_report(instance, eps)) for eps in EPSILONS],
        rounds=1,
        iterations=1,
    )

    print_header(
        "E9b", "min-entropy leakage of the Gibbs channel vs the Alvim bound"
    )
    table = ResultTable(
        ["epsilon", "measured ME leakage", "Alvim bound", "slack"],
    )
    for eps, report in rows:
        measured = report["min_entropy_leakage"]
        bound = report["bound_alvim_min_entropy"]
        table.add_row(eps, measured, bound, bound - measured)
        assert measured <= bound + 1e-9
    print(table)

    # The Gibbs channel does NOT saturate the Alvim bound (randomized
    # response does) — the slack is the structural gap between learning
    # channels and worst-case channels.
    slacks = [r["bound_alvim_min_entropy"] - r["min_entropy_leakage"] for _, r in rows]
    assert min(slacks) > 0


def test_e9_report_speed(benchmark):
    instance = bernoulli_instance(p=0.7, grid_size=5, n=3)
    report = benchmark(lambda: build_report(instance, 1.0))
    assert report["mutual_information"] >= 0
