"""E14 (extension): privacy accounting under repeated learning queries.

Deploying the paper's Gibbs estimator means answering *many* learning
queries against one dataset; the total guarantee depends on the
accountant. This bench compares the three accountants implemented in the
library — basic composition, advanced composition, and Rényi DP with
optimal order selection — for k repeats of an ε₀-DP release, plus the
smooth-sensitivity median as the structured-release counterpoint.

Expected shape (asserted): total ε is monotone in k for every accountant;
basic wins for small k, RDP wins for large k (with advanced between),
and the crossovers appear in the table; the smooth-sensitivity median
beats the global-sensitivity Laplace median by an order of magnitude on
concentrated data.
"""

import numpy as np
import pytest

from benchmarks.common import print_header
from repro.experiments import ResultTable
from repro.mechanisms import (
    LaplaceMechanism,
    PrivacySpec,
    SmoothSensitivityMedian,
    advanced_composition,
    sequential_composition,
)
from repro.privacy import optimal_rdp_to_dp, rdp_of_pure_dp
from repro.privacy.renyi import RenyiSpec

EPSILON_PER_QUERY = 0.1
DELTA = 1e-6
KS = [1, 5, 20, 100, 500, 2000]


def total_epsilons(k: int) -> dict:
    basic = sequential_composition([PrivacySpec(EPSILON_PER_QUERY)] * k)
    advanced = advanced_composition(EPSILON_PER_QUERY, 0.0, k, DELTA)
    # k-fold RDP composition of identical mechanisms scales ρ by k.
    rdp = optimal_rdp_to_dp(
        lambda alpha: RenyiSpec(
            alpha, k * rdp_of_pure_dp(EPSILON_PER_QUERY, alpha).rho
        ),
        DELTA,
    )
    return {
        "k": k,
        "basic": basic.epsilon,
        "advanced": advanced.epsilon,
        "rdp": rdp.epsilon,
    }


def bench_case(k):
    """Engine entry point: all three accountants at one query count k."""
    row = total_epsilons(k)
    return {
        "epsilon_basic": float(row["basic"]),
        "epsilon_advanced": float(row["advanced"]),
        "epsilon_rdp": float(row["rdp"]),
    }


BENCH_SPEC = {
    "case": bench_case,
    "grid": {"k": KS},
}


def test_e14_accountant_comparison(benchmark):
    rows = benchmark.pedantic(
        lambda: [total_epsilons(k) for k in KS], rounds=1, iterations=1
    )

    print_header(
        "E14 / extension",
        f"total ε after k releases of an {EPSILON_PER_QUERY}-DP mechanism "
        f"(δ' = {DELTA})",
    )
    table = ResultTable(
        ["k", "basic ε", "advanced ε", "RDP ε", "best"],
    )
    winners = []
    for row in rows:
        candidates = {
            "basic": row["basic"],
            "advanced": row["advanced"],
            "rdp": row["rdp"],
        }
        winner = min(candidates, key=candidates.get)
        winners.append(winner)
        table.add_row(
            row["k"], row["basic"], row["advanced"], row["rdp"], winner
        )
    print(table)

    # Monotone in k per accountant.
    for key in ("basic", "advanced", "rdp"):
        values = [r[key] for r in rows]
        assert all(a <= b + 1e-12 for a, b in zip(values, values[1:]))
    # Basic wins at k=1; RDP wins at the largest k; both appear as winners.
    assert winners[0] == "basic"
    assert winners[-1] == "rdp"
    # At large k, RDP is strictly below basic by a large factor.
    assert rows[-1]["rdp"] < rows[-1]["basic"] / 3


def test_e14_smooth_vs_global_median(benchmark):
    rng_data = np.random.default_rng(0)
    data = np.clip(0.55 + 0.03 * rng_data.standard_normal(501), 0, 1)
    truth = float(np.median(data))
    epsilon = 1.0

    def run():
        from repro.mechanisms import ExponentialQuantile

        smooth = SmoothSensitivityMedian(0.0, 1.0, epsilon=epsilon, delta=1e-6)
        naive = LaplaceMechanism(
            lambda d: float(np.median(d)), sensitivity=1.0, epsilon=epsilon
        )
        exp_quantile = ExponentialQuantile(0.0, 1.0, 0.5, epsilon=epsilon)
        rng = np.random.default_rng(1)
        # The smooth sensitivity is deterministic in the data — compute it
        # once and simulate the mechanism's noise directly.
        scale = 2.0 * smooth.smooth_sensitivity(data) / epsilon
        smooth_errors = np.abs(rng.laplace(scale=scale, size=2000))
        naive_errors = np.abs(
            np.clip(naive.release_many(data, 2000, random_state=rng), 0, 1)
            - truth
        )
        quantile_errors = np.abs(
            exp_quantile.release_many(data, 2000, random_state=rng) - truth
        )
        return (
            float(np.median(smooth_errors)),
            float(np.median(naive_errors)),
            float(np.median(quantile_errors)),
        )

    smooth_error, naive_error, quantile_error = benchmark.pedantic(
        run, rounds=1, iterations=1
    )

    print_header(
        "E14b",
        "private median: smooth sensitivity vs exponential quantile vs "
        "global sensitivity",
    )
    print(f"  median abs error, smooth sensitivity   : {smooth_error:.5f}")
    print(f"  median abs error, exponential quantile : {quantile_error:.5f}")
    print(f"  median abs error, global Laplace        : {naive_error:.5f}")
    print(f"  smooth improvement over global          : "
          f"{naive_error / max(smooth_error, 1e-12):.1f}x")
    # Both instance-aware mechanisms crush the global-sensitivity route.
    assert smooth_error < naive_error / 10
    assert quantile_error < naive_error / 10


def test_e14_accounting_speed(benchmark):
    out = benchmark.pedantic(
        lambda: total_epsilons(100), rounds=3, iterations=1
    )
    assert out["rdp"] > 0
