"""E17 (ROADMAP: Gopi–Lee–Liu): high-dimensional exponential mechanism.

Private linear classification at d = 16 — far beyond what the direction
grid of E7 can discretize — comparing the regularized exponential
mechanism (batched MALA sampling, `repro.private_learning.langevin`)
against the output- and objective-perturbation baselines on the same
two-Gaussian task. Test accuracy vs ε averaged over seeds, plus the
batched-chain wall-clock that the CI perf gate tracks.

Expected shape (asserted): every method improves with ε toward the
non-private baseline; the sampled mechanism is at least competitive with
output perturbation in the small-ε regime (where perturbation noise
swamps the signal but the posterior's regularizer still pulls toward
sensible θ); and the lock-step chain batch beats a per-chain Python loop
by the ≥5× acceptance bar of ISSUE 8.
"""

import numpy as np
import pytest

from benchmarks.common import print_header
from repro.experiments import ResultTable
from repro.learning import LogisticLoss, LogisticRegressionModel, TwoGaussiansTask
from repro.learning.losses import TruncatedLoss
from repro.private_learning import (
    GibbsERMClassifier,
    ObjectivePerturbationClassifier,
    OutputPerturbationClassifier,
    RegularizedExponentialMechanism,
)

EPSILONS = [0.1, 0.5, 2.0, 10.0]
SEEDS = 8
N_TRAIN = 800
DIMENSION = 16
REGULARIZATION = 0.05
LOSS_CEILING = 2.0


def build_data():
    # Signal concentrated in two coordinates of a 16-dim space; the other
    # 14 are pure noise the learners must regularize away.
    mean = np.zeros(DIMENSION)
    mean[0], mean[1] = 1.38, 0.58
    task = TwoGaussiansTask(mean, clip_features=True)
    x_train, y_train = task.sample(N_TRAIN, random_state=0)
    x_test, y_test = task.sample(4_000, random_state=999)
    return task, (x_train, y_train), (x_test, y_test)


def _gibbs_loss():
    return TruncatedLoss(LogisticLoss(), ceiling=LOSS_CEILING)


def accuracy_sweep():
    task, (x, y), (x_test, y_test) = build_data()
    nonprivate = LogisticRegressionModel(REGULARIZATION).fit(x, y)
    baseline = nonprivate.accuracy(x_test, y_test)

    rows = []
    for eps in EPSILONS:
        out_acc, obj_acc, gibbs_acc = [], [], []
        for seed in range(SEEDS):
            out = OutputPerturbationClassifier(
                LogisticLoss(), REGULARIZATION, eps
            ).fit(x, y, random_state=seed)
            obj = ObjectivePerturbationClassifier(
                LogisticLoss(), REGULARIZATION, eps
            ).fit(x, y, random_state=seed)
            gibbs = GibbsERMClassifier(_gibbs_loss(), REGULARIZATION, eps).fit(
                x, y, random_state=seed
            )
            out_acc.append(out.accuracy(x_test, y_test))
            obj_acc.append(obj.accuracy(x_test, y_test))
            gibbs_acc.append(gibbs.accuracy(x_test, y_test))
        rows.append(
            {
                "epsilon": eps,
                "output": float(np.mean(out_acc)),
                "objective": float(np.mean(obj_acc)),
                "gibbs": float(np.mean(gibbs_acc)),
            }
        )
    return baseline, rows


def bench_case(epsilon, seeds=3, chains=64, seed=0):
    """Engine entry point: accuracy of the three learners plus batched
    sampler throughput at one ε."""
    task, (x, y), (x_test, y_test) = build_data()
    out_acc, obj_acc, gibbs_acc = [], [], []
    for offset in range(seeds):
        fit_seed = seed + offset
        out = OutputPerturbationClassifier(
            LogisticLoss(), REGULARIZATION, epsilon
        ).fit(x, y, random_state=fit_seed)
        obj = ObjectivePerturbationClassifier(
            LogisticLoss(), REGULARIZATION, epsilon
        ).fit(x, y, random_state=fit_seed)
        gibbs = GibbsERMClassifier(_gibbs_loss(), REGULARIZATION, epsilon).fit(
            x, y, random_state=fit_seed
        )
        out_acc.append(out.accuracy(x_test, y_test))
        obj_acc.append(obj.accuracy(x_test, y_test))
        gibbs_acc.append(gibbs.accuracy(x_test, y_test))
    mechanism = RegularizedExponentialMechanism(
        _gibbs_loss(), REGULARIZATION, epsilon
    )
    samples = mechanism.release_many((x, y), chains, random_state=seed)
    return {
        "accuracy_output_perturbation": float(np.mean(out_acc)),
        "accuracy_objective_perturbation": float(np.mean(obj_acc)),
        "accuracy_gibbs_erm": float(np.mean(gibbs_acc)),
        "sampler_acceptance_rate": float(mechanism.last_acceptance_rate),
        "sampler_chains": int(np.asarray(samples).shape[0]),
    }


BENCH_SPEC = {
    "case": bench_case,
    "grid": {"epsilon": EPSILONS},
    "fixed": {"seeds": 3, "chains": 64, "seed": 0},
    "seed_param": "seed",
}


def test_e17_accuracy_vs_epsilon(benchmark):
    baseline, rows = benchmark.pedantic(accuracy_sweep, rounds=1, iterations=1)

    print_header(
        "E17 / regularized exponential mechanism",
        f"d={DIMENSION} private ERM accuracy vs ε (n={N_TRAIN}, {SEEDS} seeds)",
    )
    table = ResultTable(
        ["epsilon", "output-pert", "objective-pert", "gibbs-erm (MALA)", "non-private"],
        title=f"test accuracy, two-Gaussian task in R^{DIMENSION}",
    )
    for row in rows:
        table.add_row(
            row["epsilon"], row["output"], row["objective"], row["gibbs"], baseline
        )
    print(table)

    # The privacy/utility trade-off: every method improves with ε
    # (allowing Monte-Carlo slack) and lands near the baseline at ε = 10.
    for key in ("output", "objective", "gibbs"):
        values = [r[key] for r in rows]
        assert values[-1] >= values[0] - 0.02
    final = rows[-1]
    assert final["gibbs"] >= baseline - 0.05
    assert final["objective"] >= baseline - 0.05
    # Small-ε regime: the sampled mechanism's data-independent prior keeps
    # it at least competitive with output perturbation's noised optimum.
    small = rows[0]
    assert small["gibbs"] >= small["output"] - 0.02


def test_e17_batched_chain_speedup(benchmark):
    """ISSUE 8 acceptance: ≥5× lock-step batch vs per-chain loop at d≥16."""
    import time

    _, (x, y), _ = build_data()
    mechanism = RegularizedExponentialMechanism(
        _gibbs_loss(), REGULARIZATION, 1.0, steps=60
    )
    dataset = (x[:50], y[:50])
    chains = 256
    serial_chains = 16
    rng = np.random.default_rng(0)

    benchmark.pedantic(
        lambda: mechanism.release_many(dataset, chains, random_state=rng),
        rounds=3,
        iterations=1,
    )
    start = time.perf_counter()
    samples = mechanism.release_many(dataset, chains, random_state=rng)
    batch_seconds = time.perf_counter() - start
    assert np.asarray(samples).shape == (chains, DIMENSION)

    start = time.perf_counter()
    serial_samples = [
        mechanism.release(dataset, random_state=rng)  # dplint: disable=DPL010 -- the per-chain loop is the slow path being timed against
        for _ in range(serial_chains)
    ]
    serial_seconds = (time.perf_counter() - start) * (chains / serial_chains)
    assert len(serial_samples) == serial_chains

    speedup = serial_seconds / batch_seconds
    print_header(
        "E17b / batched-chain speedup",
        f"{chains} chains, d={DIMENSION}: batch {batch_seconds * 1e3:.0f}ms "
        f"vs projected serial {serial_seconds * 1e3:.0f}ms — {speedup:.1f}×",
    )
    assert speedup >= 5.0


def test_e17_acceptance_rate_stays_healthy(benchmark):
    """The auto step-size heuristic must keep MALA in a mixing regime
    across the ε grid (no silent degenerate all-reject/all-accept runs)."""
    _, (x, y), _ = build_data()

    def run():
        rates = {}
        for eps in EPSILONS:
            mechanism = RegularizedExponentialMechanism(
                _gibbs_loss(), REGULARIZATION, eps
            )
            samples = mechanism.release_many((x, y), 32, random_state=1)
            assert np.asarray(samples).shape == (32, DIMENSION)
            rates[eps] = mechanism.last_acceptance_rate
        return rates

    rates = benchmark.pedantic(run, rounds=1, iterations=1)
    table = ResultTable(["epsilon", "MALA acceptance"])
    for eps, rate in rates.items():
        table.add_row(eps, rate)
    print(table)
    for eps, rate in rates.items():
        assert 0.2 < rate < 0.98, f"acceptance {rate:.2f} at ε={eps}"


def test_e17_single_gibbs_fit_speed(benchmark):
    """Microbenchmark: one sampled-ERM fit (n=800, d=16, 120 MALA steps)."""
    _, (x, y), _ = build_data()
    clf = benchmark(
        lambda: GibbsERMClassifier(_gibbs_loss(), REGULARIZATION, 1.0).fit(
            x, y, random_state=0
        )
    )
    assert clf.coefficients.shape == (DIMENSION,)
