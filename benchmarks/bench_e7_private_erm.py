"""E7 (§1 motivation; Chaudhuri et al. refs 5, 6): private ERM shootout.

Private logistic-regression-style classification on synthetic two-Gaussian
data: non-private ERM vs output perturbation vs objective perturbation vs
the paper's generic Gibbs/exponential-mechanism learner over a direction
grid. Test accuracy vs ε, averaged over seeds, plus the grid-resolution
ablation for the generic learner.

Expected shape (asserted): all private methods approach the non-private
accuracy as ε grows; objective perturbation ≥ output perturbation at
moderate ε; the Gibbs learner pays a resolution-dependent floor that
finer grids lift.
"""

import numpy as np
import pytest

from benchmarks.common import print_header
from repro.experiments import ResultTable
from repro.learning import LogisticLoss, LogisticRegressionModel, TwoGaussiansTask
from repro.private_learning import (
    ExponentialMechanismLearner,
    ObjectivePerturbationClassifier,
    OutputPerturbationClassifier,
)

EPSILONS = [0.1, 0.5, 2.0, 10.0]
SEEDS = 10
N_TRAIN = 800
REGULARIZATION = 0.01


def build_data():
    # Class mean at an "awkward" angle (~23°) so no coarse direction grid
    # contains the optimal separator — otherwise the resolution ablation
    # would be degenerate.
    task = TwoGaussiansTask([1.38, 0.58], clip_features=True)
    x_train, y_train = task.sample(N_TRAIN, random_state=0)
    x_test, y_test = task.sample(4_000, random_state=999)
    return task, (x_train, y_train), (x_test, y_test)


def accuracy_sweep():
    task, (x, y), (x_test, y_test) = build_data()
    nonprivate = LogisticRegressionModel(REGULARIZATION).fit(x, y)
    baseline = nonprivate.accuracy(x_test, y_test)

    rows = []
    for eps in EPSILONS:
        out_acc, obj_acc, gibbs_acc = [], [], []
        for seed in range(SEEDS):
            out = OutputPerturbationClassifier(
                LogisticLoss(), REGULARIZATION, eps
            ).fit(x, y, random_state=seed)
            obj = ObjectivePerturbationClassifier(
                LogisticLoss(), REGULARIZATION, eps
            ).fit(x, y, random_state=seed)
            gibbs = ExponentialMechanismLearner(
                2, eps, N_TRAIN, resolution=64
            ).fit(x, y, random_state=seed)
            out_acc.append(out.accuracy(x_test, y_test))
            obj_acc.append(obj.accuracy(x_test, y_test))
            gibbs_acc.append(gibbs.accuracy(x_test, y_test))
        rows.append(
            {
                "epsilon": eps,
                "output": float(np.mean(out_acc)),
                "objective": float(np.mean(obj_acc)),
                "gibbs": float(np.mean(gibbs_acc)),
            }
        )
    return baseline, rows


def bench_case(epsilon, seeds=3, resolution=32, seed=0):
    """Engine entry point: mean private-classifier accuracy at one ε."""
    task, (x, y), (x_test, y_test) = build_data()
    out_acc, obj_acc, gibbs_acc = [], [], []
    for offset in range(seeds):
        fit_seed = seed + offset
        out = OutputPerturbationClassifier(
            LogisticLoss(), REGULARIZATION, epsilon
        ).fit(x, y, random_state=fit_seed)
        obj = ObjectivePerturbationClassifier(
            LogisticLoss(), REGULARIZATION, epsilon
        ).fit(x, y, random_state=fit_seed)
        gibbs = ExponentialMechanismLearner(
            2, epsilon, N_TRAIN, resolution=resolution
        ).fit(x, y, random_state=fit_seed)
        out_acc.append(out.accuracy(x_test, y_test))
        obj_acc.append(obj.accuracy(x_test, y_test))
        gibbs_acc.append(gibbs.accuracy(x_test, y_test))
    return {
        "accuracy_output_perturbation": float(np.mean(out_acc)),
        "accuracy_objective_perturbation": float(np.mean(obj_acc)),
        "accuracy_gibbs": float(np.mean(gibbs_acc)),
    }


BENCH_SPEC = {
    "case": bench_case,
    "grid": {"epsilon": EPSILONS},
    "fixed": {"seeds": 3, "resolution": 32, "seed": 0},
    "seed_param": "seed",
}


def test_e7_accuracy_vs_epsilon(benchmark):
    baseline, rows = benchmark.pedantic(accuracy_sweep, rounds=1, iterations=1)

    print_header(
        "E7 / Chaudhuri baselines",
        f"private classification accuracy vs ε (n={N_TRAIN}, {SEEDS} seeds)",
    )
    table = ResultTable(
        ["epsilon", "output-pert", "objective-pert", "gibbs (grid 64)", "non-private"],
        title="test accuracy, two-Gaussian task (Bayes-opt ≈ 0.93)",
    )
    for row in rows:
        table.add_row(
            row["epsilon"], row["output"], row["objective"], row["gibbs"], baseline
        )
    print(table)

    # All methods improve with ε (allowing small Monte-Carlo slack).
    for key in ("output", "objective", "gibbs"):
        values = [r[key] for r in rows]
        assert values[-1] >= values[0] - 0.02
    # At the largest ε everyone is near the non-private baseline.
    final = rows[-1]
    assert final["objective"] >= baseline - 0.03
    assert final["output"] >= baseline - 0.05
    assert final["gibbs"] >= baseline - 0.05
    # Objective perturbation >= output perturbation at moderate ε.
    moderate = [r for r in rows if r["epsilon"] in (0.5, 2.0)]
    assert all(r["objective"] >= r["output"] - 0.01 for r in moderate)


def test_e7_resolution_ablation(benchmark):
    """Ablation (DESIGN.md #2): Θ-grid resolution for the generic learner."""
    task, (x, y), (x_test, y_test) = build_data()
    epsilon = 2.0

    def run():
        rows = []
        for resolution in [4, 16, 64, 256]:
            accs = [
                ExponentialMechanismLearner(
                    2, epsilon, N_TRAIN, resolution=resolution
                )
                .fit(x, y, random_state=seed)
                .accuracy(x_test, y_test)
                for seed in range(SEEDS)
            ]
            rows.append((resolution, float(np.mean(accs))))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)

    print_header(
        "E7b / ablation", f"Gibbs learner grid resolution at ε={epsilon}"
    )
    table = ResultTable(["grid size", "mean test accuracy"])
    for resolution, acc in rows:
        table.add_row(resolution, acc)
    print(table)

    # A 4-direction grid underfits (no direction near the optimum); finer
    # grids recover the lost accuracy.
    coarse = rows[0][1]
    fine = max(acc for _, acc in rows[1:])
    assert fine > coarse


def test_e7_single_private_fit_speed(benchmark):
    """Microbenchmark: one objective-perturbation fit (n=800, d=2)."""
    _, (x, y), _ = build_data()
    clf = benchmark(
        lambda: ObjectivePerturbationClassifier(
            LogisticLoss(), REGULARIZATION, 1.0
        ).fit(x, y, random_state=0)
    )
    assert clf.coefficients.shape == (2,)


def test_e7_gibbs_fit_speed(benchmark):
    """Microbenchmark: one Gibbs-learner fit (grid 64, n=800)."""
    _, (x, y), _ = build_data()
    learner = benchmark(
        lambda: ExponentialMechanismLearner(2, 1.0, N_TRAIN, resolution=64).fit(
            x, y, random_state=0
        )
    )
    assert learner.coefficients.shape == (2,)
