"""E6 (Section 4 discussion): ε tilts the information–risk balance.

The measured version of the paper's qualitative claim: sweeping ε over
three decades, report (ε, I(Ẑ;θ), expected empirical risk, expected TRUE
risk) of the optimal MI-regularized channel, plus the same quantities for
the practical Gibbs estimator with a uniform prior. This is the
privacy-utility frontier that Figure 1's channel picture implies.

Expected shape (asserted): I increases and both risks decrease
monotonically in ε; the frontier saturates at the ERM risk for large ε and
at zero information for small ε; the MI estimators (exact vs plug-in from
channel samples) agree.
"""

import numpy as np
import pytest

from benchmarks.common import bernoulli_instance, print_header
from repro.core import GibbsEstimator, LearningChannel, tradeoff_curve
from repro.experiments import ResultTable, ascii_curve
from repro.information import mutual_information_histogram

# The sweep straddles the rate–distortion critical ε: below it the optimal
# channel releases nothing (the constant-predictor region), above it the
# frontier opens up.
EPSILONS = [0.1, 1.0, 3.0, 5.0, 8.0, 12.0, 20.0, 50.0]


def bench_case(epsilon, p=0.75, grid_size=5, n=3):
    """Engine entry point: one frontier point of the optimal channel."""
    from repro.core.tradeoff import minimize_tradeoff

    instance = bernoulli_instance(p=p, grid_size=grid_size, n=n)
    source, risks = instance["source"], instance["risk_matrix"]
    task, grid = instance["task"], instance["grid"]
    true_risks = np.array([task.true_risk(t) for t in grid.thetas])
    result = minimize_tradeoff(source, risks, epsilon)
    joint = source[:, None] * result.channel.matrix
    true_risk = float((joint.sum(axis=0) * true_risks).sum())
    return {
        "mutual_information": float(result.mutual_information),
        "empirical_risk": float(result.expected_empirical_risk),
        "true_risk": true_risk,
    }


BENCH_SPEC = {
    "case": bench_case,
    "grid": {"epsilon": EPSILONS},
    "fixed": {"p": 0.75, "grid_size": 5, "n": 3},
}


def test_e6_frontier(benchmark):
    instance = bernoulli_instance(p=0.75, grid_size=5, n=3)
    source, risks = instance["source"], instance["risk_matrix"]
    task, grid = instance["task"], instance["grid"]
    true_risks = np.array([task.true_risk(t) for t in grid.thetas])

    def run():
        points = tradeoff_curve(source, risks, EPSILONS)
        rows = []
        for eps, point in zip(EPSILONS, points):
            # True risk of the optimal channel: integrate the channel.
            from repro.core.tradeoff import minimize_tradeoff

            result = minimize_tradeoff(source, risks, eps)
            joint = source[:, None] * result.channel.matrix
            true_risk = float((joint.sum(axis=0) * true_risks).sum())
            rows.append(
                {
                    "epsilon": eps,
                    "information": point.mutual_information,
                    "empirical_risk": point.expected_empirical_risk,
                    "true_risk": true_risk,
                }
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)

    print_header(
        "E6 / Section 4",
        "privacy–information–risk frontier of the optimal channel",
    )
    table = ResultTable(
        ["epsilon", "I(Z;theta)", "E empirical risk", "E true risk"],
        title="Bernoulli(0.75), n=3, |Θ|=5 — optimal MI-regularized channel",
    )
    for row in rows:
        table.add_row(
            row["epsilon"],
            row["information"],
            row["empirical_risk"],
            row["true_risk"],
        )
    print(table)
    print(
        ascii_curve(
            [np.log10(r["epsilon"]) for r in rows],
            [r["empirical_risk"] for r in rows],
            title="expected empirical risk vs log10(epsilon)",
            x_label="log10 eps",
            y_label="risk",
        )
    )

    infos = [r["information"] for r in rows]
    emp = [r["empirical_risk"] for r in rows]
    assert all(a <= b + 1e-10 for a, b in zip(infos, infos[1:]))
    assert all(a >= b - 1e-10 for a, b in zip(emp, emp[1:]))
    # Extremes: near-zero leakage at ε→0; near-ERM risk at ε→∞.
    assert infos[0] < 1e-4
    erm_risk = float(source @ risks.min(axis=1))
    assert emp[-1] <= erm_risk + 0.05


def test_e6_estimator_cross_validation(benchmark):
    """MI of the actual Gibbs channel: exact enumeration vs plug-in MI
    estimated from channel samples — DESIGN.md ablation #4."""
    instance = bernoulli_instance(p=0.75, grid_size=5, n=2)
    estimator = GibbsEstimator.from_privacy(
        instance["grid"], 2.0, expected_sample_size=2
    )
    channel = LearningChannel(
        instance["data_law"], n=2, posterior_map=estimator.gibbs.posterior
    )
    exact = channel.mutual_information()

    def run():
        rng = np.random.default_rng(0)
        draws = channel.sample_law.sample(size=60_000, random_state=rng)
        # The posterior depends only on the dataset, so group identical
        # datasets and draw each group's thetas as one vectorized batch
        # (the joint (Z, θ) law is unchanged: draws are conditionally
        # i.i.d. given the dataset, and the MI histogram ignores order).
        counts = {}
        for sample in draws:
            counts[sample] = counts.get(sample, 0) + 1
        inputs, outputs = [], []
        for sample, count in counts.items():
            thetas = estimator.release_many(
                list(sample), count, random_state=rng
            )
            inputs.extend([sample] * count)
            outputs.extend(thetas)
        return mutual_information_histogram(
            [str(s) for s in inputs], [str(t) for t in outputs]
        )

    plug_in = benchmark.pedantic(run, rounds=1, iterations=1)
    print_header("E6b", "MI estimator cross-validation (exact vs plug-in)")
    print(f"exact I(Z;θ)   = {exact:.5f} nats")
    print(f"plug-in I(Z;θ) = {plug_in:.5f} nats (60k channel samples)")
    assert plug_in == pytest.approx(exact, abs=0.02)
