"""E2 (Theorem 3.1): PAC-Bayes bound validity and tightness.

Monte-Carlo over sample draws: for each n, draw many samples, compute the
Gibbs posterior and the Catoni / McAllester / Seeger bounds, and compare to
the *exact* true Gibbs risk (closed-form on the Bernoulli task). Reports
coverage (fraction of draws where the bound held — must be ≥ 1-δ) and the
mean bound-minus-truth gap (tightness).

Expected shape (asserted): every bound's coverage ≥ 1-δ; Seeger is the
tightest on average; gaps shrink as n grows.
"""

import numpy as np
import pytest

from benchmarks.common import print_header
from repro.core.pac_bayes import (
    catoni_bound,
    gibbs_minimizer,
    mcallester_bound,
    seeger_bound,
)
from repro.distributions import DiscreteDistribution
from repro.experiments import ResultTable
from repro.information import kl_divergence
from repro.learning import BernoulliTask, PredictorGrid

DELTA = 0.1
TRIALS = 400
SAMPLE_SIZES = [50, 200, 1000]


def run_coverage(n: int, seed: int = 0, trials: int = TRIALS) -> dict:
    task = BernoulliTask(p=0.7)
    grid = PredictorGrid.linspace(task.loss, 0.0, 1.0, 9)
    prior = DiscreteDistribution.uniform(grid.thetas)
    true_risks = np.array([task.true_risk(t) for t in grid.thetas])
    lam = float(np.sqrt(n))
    rng = np.random.default_rng(seed)

    violations = {"catoni": 0, "mcallester": 0, "seeger": 0}
    gaps = {"catoni": [], "mcallester": [], "seeger": []}
    for _ in range(trials):
        sample = list(task.sample(n, random_state=rng))
        risks = grid.empirical_risks(sample)
        posterior = gibbs_minimizer(prior, risks, lam)
        emp = float(risks @ posterior.probabilities)
        kl = kl_divergence(posterior, prior)
        true = float(true_risks @ posterior.probabilities)
        bounds = {
            "catoni": catoni_bound(emp, kl, n, lam, DELTA),
            "mcallester": mcallester_bound(emp, kl, n, DELTA),
            "seeger": seeger_bound(emp, kl, n, DELTA),
        }
        for name, bound in bounds.items():
            if true > bound:
                violations[name] += 1
            gaps[name].append(bound - true)
    return {
        "n": n,
        "coverage": {
            name: 1.0 - violations[name] / trials for name in violations
        },
        "mean_gap": {name: float(np.mean(gaps[name])) for name in gaps},
    }


def bench_case(n, trials=80, seed=0):
    """Engine entry point: coverage/tightness at one n, flattened."""
    result = run_coverage(n, seed=seed, trials=trials)
    outputs = {"n": int(n)}
    for name in ("catoni", "mcallester", "seeger"):
        outputs[f"coverage_{name}"] = float(result["coverage"][name])
        outputs[f"mean_gap_{name}"] = float(result["mean_gap"][name])
    return outputs


BENCH_SPEC = {
    "case": bench_case,
    "grid": {"n": SAMPLE_SIZES},
    "fixed": {"trials": 80, "seed": 0},
    "seed_param": "seed",
}


def test_e2_bound_coverage_and_tightness(benchmark):
    results = benchmark.pedantic(
        lambda: [run_coverage(n) for n in SAMPLE_SIZES], rounds=1, iterations=1
    )

    print_header(
        "E2 / Theorem 3.1",
        f"PAC-Bayes bounds hold w.p. >= 1-δ (δ={DELTA}, {TRIALS} draws/row)",
    )
    table = ResultTable(
        [
            "n",
            "catoni cov",
            "mcallester cov",
            "seeger cov",
            "catoni gap",
            "mcallester gap",
            "seeger gap",
        ],
        title="coverage (target >= 0.9) and mean bound-truth gap",
    )
    for res in results:
        table.add_row(
            res["n"],
            res["coverage"]["catoni"],
            res["coverage"]["mcallester"],
            res["coverage"]["seeger"],
            res["mean_gap"]["catoni"],
            res["mean_gap"]["mcallester"],
            res["mean_gap"]["seeger"],
        )
    print(table)

    for res in results:
        # Validity: coverage at least 1 - δ for every bound.
        for name in ("catoni", "mcallester", "seeger"):
            assert res["coverage"][name] >= 1.0 - DELTA
        # Seeger is the tightest on average.
        assert res["mean_gap"]["seeger"] <= res["mean_gap"]["mcallester"] + 1e-9
    # Tightness improves with n for every bound.
    for name in ("catoni", "mcallester", "seeger"):
        gaps = [res["mean_gap"][name] for res in results]
        assert gaps[0] > gaps[-1]


def test_e2_single_bound_evaluation_speed(benchmark):
    """Microbenchmark: one full bound evaluation (posterior + KL + bounds)."""
    task = BernoulliTask(p=0.7)
    grid = PredictorGrid.linspace(task.loss, 0.0, 1.0, 9)
    prior = DiscreteDistribution.uniform(grid.thetas)
    sample = list(task.sample(500, random_state=1))

    def run():
        risks = grid.empirical_risks(sample)
        posterior = gibbs_minimizer(prior, risks, 22.0)
        emp = float(risks @ posterior.probabilities)
        kl = kl_divergence(posterior, prior)
        return seeger_bound(emp, kl, 500, DELTA)

    value = benchmark(run)
    assert 0 < value < 1
