"""Benchmark suite package; see BENCH_*.json manifests for cached runs."""

__all__: list[str] = []
