"""E1 (Figure 1): the learning channel Ẑ → θ, measured.

The paper's Figure 1 is a diagram; this bench regenerates it as numbers:
for the Gibbs channel on a finite universe, the mutual information
I(Ẑ; θ), the sample entropy ceiling, the leakage fraction, and the exact
worst-case privacy loss — each as a function of the privacy parameter ε.

Expected shape (asserted): I(Ẑ;θ) grows monotonically with ε and stays
below H(Ẑ); the exact privacy loss stays below the Theorem 4.1 guarantee.
"""

import pytest

from benchmarks.common import bernoulli_instance, print_header
from repro.core import GibbsEstimator, LearningChannel
from repro.experiments import ResultTable, ascii_curve

EPSILONS = [0.05, 0.2, 0.5, 1.0, 2.0, 5.0, 10.0]


def build_channel(instance, epsilon):
    estimator = GibbsEstimator.from_privacy(
        instance["grid"], epsilon, expected_sample_size=instance["n"]
    )
    return LearningChannel(
        instance["data_law"],
        n=instance["n"],
        posterior_map=estimator.gibbs.posterior,
    )


def bench_case(epsilon, p=0.7, grid_size=5, n=2):
    """Engine entry point: one (ε, p, grid, n) channel, summarized."""
    instance = bernoulli_instance(p=p, grid_size=grid_size, n=n)
    summary = build_channel(instance, epsilon).leakage_summary()
    return {
        "mutual_information": float(summary["mutual_information"]),
        "sample_entropy": float(summary["sample_entropy"]),
        "leakage_fraction": float(summary["leakage_fraction"]),
        "exact_privacy_loss": float(summary["exact_privacy_loss"]),
    }


BENCH_SPEC = {
    "case": bench_case,
    "grid": {"epsilon": EPSILONS},
    "fixed": {"p": 0.7, "grid_size": 5, "n": 2},
}


def test_e1_channel_information_curve(benchmark):
    instance = bernoulli_instance(p=0.7, grid_size=5, n=2)

    def run():
        return [
            (eps, build_channel(instance, eps).leakage_summary())
            for eps in EPSILONS
        ]

    rows = benchmark.pedantic(run, rounds=1, iterations=1)

    print_header(
        "E1 / Figure 1",
        "DP learning as an information channel: I(Z;θ) and exact ε vs ε",
    )
    table = ResultTable(
        [
            "epsilon",
            "I(Z;theta) [nats]",
            "H(Z) [nats]",
            "leakage %",
            "measured eps",
        ],
        title="Gibbs learning channel, Bernoulli(0.7), n=2, |Θ|=5",
    )
    infos = []
    for eps, summary in rows:
        infos.append(summary["mutual_information"])
        table.add_row(
            eps,
            summary["mutual_information"],
            summary["sample_entropy"],
            100 * summary["leakage_fraction"],
            summary["exact_privacy_loss"],
        )
    print(table)
    print(
        ascii_curve(
            EPSILONS,
            infos,
            title="mutual information vs privacy parameter",
            x_label="epsilon",
            y_label="I(Z;theta)",
        )
    )

    # Shape assertions: leakage is monotone in ε and below the entropy cap;
    # measured privacy loss never exceeds the nominal ε.
    assert all(a <= b + 1e-12 for a, b in zip(infos, infos[1:]))
    for eps, summary in rows:
        assert summary["mutual_information"] <= summary["sample_entropy"]
        assert summary["exact_privacy_loss"] <= eps + 1e-9


def test_e1_channel_construction_speed(benchmark):
    """Microbenchmark: building the exact channel (16 datasets, 5 outputs)."""
    instance = bernoulli_instance(p=0.7, grid_size=5, n=4)
    result = benchmark(lambda: build_channel(instance, 1.0).mutual_information())
    assert result >= 0.0


def test_e1_adversary_view(benchmark):
    """Bayes adversary posterior over secrets, per released predictor."""
    instance = bernoulli_instance(p=0.7, grid_size=5, n=2)
    channel = build_channel(instance, 1.0)

    def run():
        return {
            theta: channel.adversary_posterior(theta)
            for theta in channel.predictors
        }

    posteriors = benchmark.pedantic(run, rounds=1, iterations=1)

    print_header("E1b", "What the adversary learns from the released θ")
    table = ResultTable(
        ["released theta", "max posterior shift (TV)"],
        title="Bayes posterior over the secret sample vs its prior law",
    )
    for theta, posterior in posteriors.items():
        table.add_row(
            theta, posterior.total_variation_distance(channel.sample_law)
        )
    print(table)
    assert all(
        0 <= p.total_variation_distance(channel.sample_law) < 1
        for p in posteriors.values()
    )
