"""E10 (Section 5 future work): private regression and density estimation.

The paper announces both as work in progress; this bench realizes them
with the PAC-Bayes/Gibbs machinery and a classical comparator each:

* regression: Gibbs over a coefficient lattice vs sufficient-statistics
  perturbation vs non-private ridge — excess MSE vs ε;
* density estimation: Gibbs over a Beta-shape family vs the Laplace
  histogram — total variation to the true binned density vs ε.

Expected shape (asserted): both private methods improve with ε and
approach the non-private reference. For regression, the Gibbs lattice is
dramatically more robust at small ε (its hypothesis space is bounded,
while noisy sufficient statistics can explode) and the specialized
comparator wins at large ε (no lattice floor) — the E7 crossover again.
For density estimation the crossover runs the *other* way: the Laplace
histogram degrades gracefully at small ε (renormalization caps the
damage), while the Gibbs family needs enough ε to identify the right
shape — but once it does, its strong inductive bias beats the
histogram's sampling-noise floor.
"""

import numpy as np
import pytest

from benchmarks.common import print_header
from repro.experiments import ResultTable
from repro.learning import LinearRegressionTask, RidgeRegressionModel
from repro.private_learning import (
    GibbsDensityEstimator,
    GibbsRidgeRegression,
    LaplaceHistogramDensity,
    SufficientStatisticsRidge,
    discretize_density,
)

EPSILONS = [0.1, 0.5, 2.0, 10.0, 50.0]
SEEDS = 8


def bench_case(epsilon, seeds=2, seed=0):
    """Engine entry point: regression MSE + density TV at one ε."""
    task = LinearRegressionTask([0.8, -0.5], noise=0.1)
    x, y = task.sample(600, random_state=0)
    y = np.clip(y, -1, 1)
    x_test, y_test = task.sample(3_000, random_state=99)
    y_test = np.clip(y_test, -1, 1)
    gibbs_mse, stats_mse = [], []
    for offset in range(seeds):
        fit_seed = seed + offset
        gibbs = GibbsRidgeRegression(
            2, epsilon, len(y), radius=1.5, points_per_axis=7
        ).fit(x, y, random_state=fit_seed)
        stats = SufficientStatisticsRidge(
            2, epsilon, regularization=0.01
        ).fit(x, y, random_state=fit_seed)
        gibbs_mse.append(gibbs.mean_squared_error(x_test, y_test))
        stats_mse.append(stats.mean_squared_error(x_test, y_test))

    rng = np.random.default_rng(1)
    data = rng.beta(8.0, 2.0, size=900)
    truth = discretize_density(
        lambda v: v**7 * (1 - v) if 0 < v < 1 else 0.0, 16
    )
    gibbs_tv, hist_tv = [], []
    for offset in range(seeds):
        fit_seed = seed + offset
        gibbs_density = GibbsDensityEstimator(epsilon, len(data), bins=16).fit(
            data, random_state=fit_seed
        )
        hist = LaplaceHistogramDensity(epsilon, bins=16).fit(
            data, random_state=fit_seed
        )
        gibbs_tv.append(gibbs_density.total_variation_to(truth))
        hist_tv.append(hist.total_variation_to(truth))
    return {
        "regression_gibbs_mse": float(np.mean(gibbs_mse)),
        "regression_stats_mse": float(np.mean(stats_mse)),
        "density_gibbs_tv": float(np.mean(gibbs_tv)),
        "density_histogram_tv": float(np.mean(hist_tv)),
    }


BENCH_SPEC = {
    "case": bench_case,
    "grid": {"epsilon": EPSILONS},
    "fixed": {"seeds": 2, "seed": 0},
    "seed_param": "seed",
}


def test_e10_private_regression(benchmark):
    task = LinearRegressionTask([0.8, -0.5], noise=0.1)
    x, y = task.sample(600, random_state=0)
    y = np.clip(y, -1, 1)
    x_test, y_test = task.sample(3_000, random_state=99)
    y_test = np.clip(y_test, -1, 1)

    nonprivate = RidgeRegressionModel(regularization=0.01).fit(x, y)
    floor = nonprivate.mean_squared_error(x_test, y_test)

    def run():
        rows = []
        for eps in EPSILONS:
            gibbs_mse, stats_mse = [], []
            for seed in range(SEEDS):
                gibbs = GibbsRidgeRegression(
                    2, eps, len(y), radius=1.5, points_per_axis=7
                ).fit(x, y, random_state=seed)
                stats = SufficientStatisticsRidge(
                    2, eps, regularization=0.01
                ).fit(x, y, random_state=seed)
                gibbs_mse.append(gibbs.mean_squared_error(x_test, y_test))
                stats_mse.append(stats.mean_squared_error(x_test, y_test))
            rows.append(
                {
                    "epsilon": eps,
                    "gibbs": float(np.mean(gibbs_mse)),
                    "stats": float(np.mean(stats_mse)),
                }
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)

    print_header(
        "E10a / future work (§5)",
        f"private regression: test MSE vs ε (non-private floor {floor:.4f})",
    )
    table = ResultTable(
        ["epsilon", "Gibbs lattice MSE", "suff-stats MSE", "non-private MSE"],
        title=f"n=600, d=2, {SEEDS} seeds",
    )
    for row in rows:
        table.add_row(row["epsilon"], row["gibbs"], row["stats"], floor)
    print(table)

    # Both improve with ε overall.
    for key in ("gibbs", "stats"):
        values = [r[key] for r in rows]
        assert values[-1] <= values[0] + 1e-9
    # At the largest ε both are close to the floor (Gibbs pays its lattice).
    assert rows[-1]["stats"] <= floor * 1.2 + 0.01
    assert rows[-1]["gibbs"] <= floor + 0.05
    # Crossover: Gibbs is the more robust of the two at the smallest ε.
    assert rows[0]["gibbs"] <= rows[0]["stats"]


def test_e10_private_density(benchmark):
    rng = np.random.default_rng(1)
    data = rng.beta(8.0, 2.0, size=900)
    truth = discretize_density(
        lambda x: x**7 * (1 - x) if 0 < x < 1 else 0.0, 16
    )

    def run():
        rows = []
        for eps in EPSILONS:
            gibbs_tv, hist_tv = [], []
            for seed in range(SEEDS):
                gibbs = GibbsDensityEstimator(eps, len(data), bins=16).fit(
                    data, random_state=seed
                )
                hist = LaplaceHistogramDensity(eps, bins=16).fit(
                    data, random_state=seed
                )
                gibbs_tv.append(gibbs.total_variation_to(truth))
                hist_tv.append(hist.total_variation_to(truth))
            rows.append(
                {
                    "epsilon": eps,
                    "gibbs": float(np.mean(gibbs_tv)),
                    "histogram": float(np.mean(hist_tv)),
                }
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)

    print_header(
        "E10b / future work (§5)",
        "private density estimation: TV to truth vs ε (Beta(8,2) data)",
    )
    table = ResultTable(
        ["epsilon", "Gibbs family TV", "Laplace histogram TV"],
        title=f"n=900, 16 bins, {SEEDS} seeds",
    )
    for row in rows:
        table.add_row(row["epsilon"], row["gibbs"], row["histogram"])
    print(table)

    for key in ("gibbs", "histogram"):
        values = [r[key] for r in rows]
        assert values[-1] <= values[0] + 1e-9
    # Small ε: the renormalized histogram degrades gracefully while the
    # Gibbs posterior is still near-uniform over shapes.
    assert rows[0]["histogram"] <= rows[0]["gibbs"]
    # Large ε: the Gibbs family's inductive bias beats the histogram's
    # sampling-noise floor.
    assert rows[-1]["gibbs"] <= rows[-1]["histogram"]


def test_e10_gibbs_regression_fit_speed(benchmark):
    task = LinearRegressionTask([0.8, -0.5], noise=0.1)
    x, y = task.sample(600, random_state=2)
    y = np.clip(y, -1, 1)
    model = benchmark(
        lambda: GibbsRidgeRegression(
            2, 1.0, len(y), points_per_axis=7
        ).fit(x, y, random_state=0)
    )
    assert model.coefficients.shape == (2,)


def test_e10_density_fit_speed(benchmark):
    rng = np.random.default_rng(3)
    data = rng.beta(3.0, 3.0, size=900)
    est = benchmark(
        lambda: GibbsDensityEstimator(1.0, len(data)).fit(data, random_state=0)
    )
    assert est.bin_probabilities is not None
