"""E19 (ROADMAP: DJW local model): locally-private SGD learning curves.

Linear classification where each client privatizes their per-example
gradient through the ℓ2 sampling mechanism before the server sees it
(`repro.local_privacy.PrivateSGDClassifier`), against the non-private
logistic baseline and the central-DP output-perturbation learner on the
same two-Gaussian task. The local learner pays the DJW ``√(d/(nε²))``
excess-risk factor, so its accuracy trails central DP at every ε but
recovers with both ε and n — the learning-theoretic face of the E18
rate gap. The locally-private median estimator rides along on a 1-d
sweep.

Expected shape (asserted): accuracy improves with ε for both private
learners; central DP dominates local DP at every ε; the local learner's
accuracy rises with n at fixed ε; the private median converges to the
truth as ε grows.
"""

import numpy as np

from benchmarks.common import print_header
from repro.experiments import ResultTable
from repro.learning import LogisticLoss, LogisticRegressionModel, TwoGaussiansTask
from repro.local_privacy import PrivateSGDClassifier, locally_private_median
from repro.private_learning import OutputPerturbationClassifier

EPSILONS = [0.5, 1.0, 2.0, 4.0, 8.0]
SEEDS = 4
N_TRAIN = 2_000
DIMENSION = 4
REGULARIZATION = 0.05
BATCH_SIZE = 20


def build_data(n_train=N_TRAIN):
    mean = np.zeros(DIMENSION)
    mean[0], mean[1] = 1.1, 0.5
    task = TwoGaussiansTask(mean, clip_features=True)
    x_train, y_train = task.sample(n_train, random_state=0)
    x_test, y_test = task.sample(4_000, random_state=999)
    return (x_train, y_train), (x_test, y_test)


def accuracy_sweep(seeds=SEEDS):
    (x, y), (x_test, y_test) = build_data()
    baseline = LogisticRegressionModel(REGULARIZATION).fit(x, y).accuracy(
        x_test, y_test
    )
    rows = []
    for eps in EPSILONS:
        central_acc, local_acc = [], []
        for seed in range(seeds):
            central = OutputPerturbationClassifier(
                LogisticLoss(), REGULARIZATION, eps
            ).fit(x, y, random_state=seed)
            local = PrivateSGDClassifier(
                LogisticLoss(), REGULARIZATION, eps, batch_size=BATCH_SIZE
            ).fit(x, y, random_state=seed)
            central_acc.append(central.accuracy(x_test, y_test))
            local_acc.append(local.accuracy(x_test, y_test))
        rows.append(
            {
                "epsilon": eps,
                "central": float(np.mean(central_acc)),
                "local": float(np.mean(local_acc)),
            }
        )
    return baseline, rows


def sample_complexity_sweep(epsilon=2.0, sizes=(250, 1_000, 4_000), seeds=SEEDS):
    """Local-SGD accuracy vs n at fixed ε (the n-axis of the rate)."""
    _, (x_test, y_test) = build_data()
    rows = []
    for n in sizes:
        (x, y), _ = build_data(n_train=n)
        accs = [
            PrivateSGDClassifier(
                LogisticLoss(), REGULARIZATION, epsilon, batch_size=BATCH_SIZE
            )
            .fit(x, y, random_state=seed)
            .accuracy(x_test, y_test)
            for seed in range(seeds)
        ]
        rows.append({"n": n, "local": float(np.mean(accs))})
    return rows


def bench_case(epsilon, seeds=2, seed=0):
    """Engine entry point: learner accuracies plus the median error at
    one ε."""
    (x, y), (x_test, y_test) = build_data()
    central_acc, local_acc = [], []
    for offset in range(seeds):
        fit_seed = seed + offset
        central_acc.append(
            OutputPerturbationClassifier(LogisticLoss(), REGULARIZATION, epsilon)
            .fit(x, y, random_state=fit_seed)
            .accuracy(x_test, y_test)
        )
        local_acc.append(
            PrivateSGDClassifier(
                LogisticLoss(), REGULARIZATION, epsilon, batch_size=BATCH_SIZE
            )
            .fit(x, y, random_state=fit_seed)
            .accuracy(x_test, y_test)
        )
    rng = np.random.default_rng(seed)
    values = rng.uniform(-0.6, 0.8, size=3_000)
    median = locally_private_median(values, epsilon, random_state=rng)
    return {
        "accuracy_central": float(np.mean(central_acc)),
        "accuracy_local_sgd": float(np.mean(local_acc)),
        "median_absolute_error": float(abs(median - np.median(values))),
    }


BENCH_SPEC = {
    "case": bench_case,
    "grid": {"epsilon": EPSILONS},
    "fixed": {"seeds": 2, "seed": 0},
    "seed_param": "seed",
}


def test_e19_accuracy_vs_epsilon(benchmark):
    baseline, rows = benchmark.pedantic(accuracy_sweep, rounds=1, iterations=1)

    print_header(
        "E19 / locally-private SGD",
        f"d={DIMENSION} accuracy vs ε (n={N_TRAIN}, {SEEDS} seeds)",
    )
    table = ResultTable(
        ["epsilon", "central (output-pert)", "local SGD", "non-private"],
        title=f"test accuracy, two-Gaussian task in R^{DIMENSION}",
    )
    for row in rows:
        table.add_row(row["epsilon"], row["central"], row["local"], baseline)
    print(table)

    for row in rows:
        # Trust buys accuracy: the curator model dominates the local one
        # at every ε (small Monte-Carlo slack).
        assert row["central"] >= row["local"] - 0.02, row
    # The local learner climbs steeply with ε (it starts deep in the
    # noise-dominated regime); central DP, already near the baseline at
    # ε=0.5 for this n, must merely not degrade.
    local_values = [row["local"] for row in rows]
    assert local_values[-1] >= local_values[0] + 0.05, local_values
    central_values = [row["central"] for row in rows]
    assert central_values[-1] >= central_values[0] - 0.005, central_values
    assert rows[-1]["central"] >= baseline - 0.03
    assert rows[-1]["local"] >= baseline - 0.12


def test_e19_accuracy_vs_sample_size(benchmark):
    rows = benchmark.pedantic(
        sample_complexity_sweep, rounds=1, iterations=1
    )
    table = ResultTable(
        ["n", "local SGD accuracy"], title="local SGD at ε=2 vs sample size"
    )
    for row in rows:
        table.add_row(row["n"], row["local"])
    print(table)
    values = [row["local"] for row in rows]
    # More clients buy back the privacy noise: accuracy rises with n.
    assert values[-1] >= values[0] + 0.02, values


def test_e19_private_median_converges(benchmark):
    """The 1-bit median protocol tightens around the truth as ε grows."""

    def run():
        errors = {}
        for eps in EPSILONS:
            rng = np.random.default_rng(3)
            values = rng.uniform(-0.6, 0.8, size=3_000)
            estimate = locally_private_median(values, eps, random_state=rng)
            errors[eps] = float(abs(estimate - np.median(values)))
        return errors

    errors = benchmark.pedantic(run, rounds=1, iterations=1)
    table = ResultTable(["epsilon", "median |error|"])
    for eps, err in errors.items():
        table.add_row(eps, err)
    print(table)
    assert errors[EPSILONS[-1]] < 0.05, errors
    assert all(err < 0.5 for err in errors.values()), errors
