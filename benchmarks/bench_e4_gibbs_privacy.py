"""E4 (Theorem 4.1): the Gibbs estimator is 2·λ·Δ(R̂)-DP — exactly audited.

For each (ε, n) the exact auditor enumerates *every* neighbouring pair of
datasets over {0,1}^n and computes the worst-case privacy loss of the Gibbs
output law. Also runs the black-box sampled auditor as a cross-check, and a
temperature-calibration ablation (fixed λ vs privacy-calibrated λ).

Expected shape (asserted): measured ε ≤ claimed ε on every row, measured
grows with claimed, and the bound is conservative but not wildly loose
(measured within ~50% of claimed on adversarial pairs at moderate ε).
"""

import numpy as np
import pytest

from benchmarks.common import print_header
from repro.core import GibbsEstimator
from repro.experiments import ResultTable
from repro.learning import BernoulliTask, PredictorGrid
from repro.privacy import ExactPrivacyAuditor, SampledPrivacyAuditor

EPSILONS = [0.1, 0.5, 1.0, 2.0, 5.0]
SAMPLE_SIZES = [1, 2, 3]


def audit_row(epsilon: float, n: int) -> dict:
    task = BernoulliTask(p=0.7)
    grid = PredictorGrid.linspace(task.loss, 0.0, 1.0, 5)
    estimator = GibbsEstimator.from_privacy(grid, epsilon, expected_sample_size=n)
    auditor = ExactPrivacyAuditor(estimator.output_distribution)
    report = auditor.audit([0, 1], n, claimed_epsilon=epsilon)
    return {
        "epsilon": epsilon,
        "n": n,
        "measured": report.measured_epsilon,
        "satisfied": report.satisfied,
        "pairs": report.pairs_checked,
    }


def bench_case(epsilon, n):
    """Engine entry point: one exact neighbour-pair audit cell."""
    row = audit_row(epsilon, n)
    return {
        "measured_epsilon": float(row["measured"]),
        "satisfied": bool(row["satisfied"]),
        "pairs_checked": int(row["pairs"]),
    }


BENCH_SPEC = {
    "case": bench_case,
    "grid": {"epsilon": EPSILONS, "n": SAMPLE_SIZES},
}


def test_e4_exact_audit_sweep(benchmark):
    rows = benchmark.pedantic(
        lambda: [
            audit_row(eps, n) for n in SAMPLE_SIZES for eps in EPSILONS
        ],
        rounds=1,
        iterations=1,
    )

    print_header(
        "E4 / Theorem 4.1",
        "Exact privacy audit of the Gibbs estimator over all neighbour pairs",
    )
    table = ResultTable(
        ["n", "claimed eps", "measured eps", "measured/claimed", "pairs", "holds"],
        title="Bernoulli universe {0,1}, |Θ|=5, calibrated temperature",
    )
    for row in rows:
        table.add_row(
            row["n"],
            row["epsilon"],
            row["measured"],
            row["measured"] / row["epsilon"],
            row["pairs"],
            row["satisfied"],
        )
    print(table)

    for row in rows:
        assert row["satisfied"]
    # Measured loss grows with the claimed ε at fixed n.
    for n in SAMPLE_SIZES:
        measured = [r["measured"] for r in rows if r["n"] == n]
        assert all(a <= b + 1e-12 for a, b in zip(measured, measured[1:]))
    # The guarantee is not wildly loose: at moderate ε at least half the
    # budget is actually used by the worst pair.
    moderate = [r for r in rows if r["epsilon"] == 1.0]
    assert all(r["measured"] >= 0.3 * r["epsilon"] for r in moderate)


def test_e4_sampled_audit_cross_check(benchmark):
    """Black-box sampled audit on the worst pair must agree with exact."""
    task = BernoulliTask(p=0.7)
    grid = PredictorGrid.linspace(task.loss, 0.0, 1.0, 5)
    n, epsilon = 2, 2.0
    estimator = GibbsEstimator.from_privacy(grid, epsilon, expected_sample_size=n)

    exact_report = ExactPrivacyAuditor(estimator.output_distribution).audit(
        [0, 1], n, claimed_epsilon=epsilon
    )
    worst_a, worst_b = exact_report.worst_pair

    sampler = SampledPrivacyAuditor(
        lambda d, random_state=None: estimator.release(
            list(d), random_state=random_state
        ),
        n_samples=40_000,
    )
    sampled_report = benchmark.pedantic(
        lambda: sampler.audit_pair(worst_a, worst_b, random_state=0),
        rounds=1,
        iterations=1,
    )

    print_header("E4b", "Sampled vs exact audit on the worst neighbour pair")
    print(f"exact measured ε    = {exact_report.measured_epsilon:.4f}")
    print(f"sampled estimate ε̂  = {sampled_report.measured_epsilon:.4f}")
    assert sampled_report.measured_epsilon == pytest.approx(
        exact_report.measured_epsilon, abs=0.1
    )


def test_e4_ablation_fixed_vs_calibrated_temperature(benchmark):
    """Ablation (DESIGN.md #1): fixing λ irrespective of n breaks the ε
    target as n shrinks, while calibration holds it exactly."""
    task = BernoulliTask(p=0.7)
    grid = PredictorGrid.linspace(task.loss, 0.0, 1.0, 5)
    target_epsilon = 1.0
    fixed_lambda = 5.0

    def run():
        rows = []
        for n in [1, 2, 4]:
            from repro.core import GibbsPosterior

            fixed = GibbsPosterior(grid, fixed_lambda)
            calibrated = GibbsEstimator.from_privacy(
                grid, target_epsilon, expected_sample_size=n
            )
            fixed_report = ExactPrivacyAuditor(fixed.posterior).audit([0, 1], n)
            calib_report = ExactPrivacyAuditor(
                calibrated.output_distribution
            ).audit([0, 1], n)
            rows.append(
                {
                    "n": n,
                    "fixed_guarantee": fixed.privacy_epsilon(n),
                    "fixed_measured": fixed_report.measured_epsilon,
                    "calibrated_measured": calib_report.measured_epsilon,
                }
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)

    print_header(
        "E4c / ablation",
        f"fixed λ={fixed_lambda} vs λ calibrated to ε={target_epsilon}",
    )
    table = ResultTable(
        ["n", "fixed-λ guarantee", "fixed-λ measured", "calibrated measured"],
    )
    for row in rows:
        table.add_row(
            row["n"],
            row["fixed_guarantee"],
            row["fixed_measured"],
            row["calibrated_measured"],
        )
    print(table)

    # Fixed λ: privacy degrades (guarantee inflates) as n shrinks.
    guarantees = [r["fixed_guarantee"] for r in rows]
    assert guarantees[0] > guarantees[-1]
    # Calibrated: measured stays within the target at every n.
    for row in rows:
        assert row["calibrated_measured"] <= target_epsilon + 1e-9
