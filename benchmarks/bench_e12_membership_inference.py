"""E12 (extension): membership inference against the Gibbs estimator.

The operational meaning of the paper's guarantee: Definition 2.1 bounds
what ANY attacker can infer about one record from the released predictor.
This bench computes, exactly, the optimal (Neyman–Pearson) attack ROC
against the Gibbs estimator on worst-case neighbour pairs and compares it
to the ε-DP tradeoff bound and the advantage cap ``(e^ε-1)/(e^ε+1)``.

Expected shape (asserted): the attack ROC dominates (lies above) the DP
tradeoff curve at every α and every ε; the attack advantage grows with ε
but stays strictly below the DP cap (the Gibbs channel does not saturate
its guarantee, matching E4's measured/claimed ratio); randomized response
— run as the sharp control — attains the cap exactly.
"""

import numpy as np
import pytest

from benchmarks.common import print_header
from repro.core import GibbsEstimator
from repro.distributions import DiscreteDistribution
from repro.experiments import ResultTable, ascii_curve
from repro.learning import BernoulliTask, PredictorGrid
from repro.mechanisms import RandomizedResponse
from repro.privacy import (
    dp_advantage_bound,
    dp_tradeoff_curve,
    membership_advantage,
    optimal_attack_roc,
    verify_tradeoff_dominance,
)
from repro.privacy.definitions import all_neighbour_pairs

EPSILONS = [0.2, 0.5, 1.0, 2.0, 5.0]
N = 2


def worst_pair_laws(epsilon: float):
    """Output laws on the neighbour pair with the largest attack advantage."""
    task = BernoulliTask(p=0.7)
    grid = PredictorGrid.linspace(task.loss, 0.0, 1.0, 5)
    estimator = GibbsEstimator.from_privacy(grid, epsilon, expected_sample_size=N)
    best = None
    for a, b in all_neighbour_pairs([0, 1], N):
        p = estimator.output_distribution(list(a))
        q = estimator.output_distribution(list(b))
        advantage = membership_advantage(p, q)
        if best is None or advantage > best[0]:
            best = (advantage, p, q)
    return best


def bench_case(epsilon):
    """Engine entry point: worst-pair attack advantage vs the DP cap."""
    advantage, p, q = worst_pair_laws(epsilon)
    rr = RandomizedResponse(epsilon)
    t = rr.truth_probability
    rr_advantage = membership_advantage(
        DiscreteDistribution([0, 1], [t, 1 - t]),
        DiscreteDistribution([0, 1], [1 - t, t]),
    )
    return {
        "attack_advantage": float(advantage),
        "dp_advantage_cap": float(dp_advantage_bound(epsilon)),
        "randomized_response_advantage": float(rr_advantage),
        "tradeoff_dominates": bool(verify_tradeoff_dominance(p, q, epsilon)),
    }


BENCH_SPEC = {
    "case": bench_case,
    "grid": {"epsilon": EPSILONS},
}


def test_e12_attack_advantage_vs_epsilon(benchmark):
    rows = benchmark.pedantic(
        lambda: [(eps, worst_pair_laws(eps)) for eps in EPSILONS],
        rounds=1,
        iterations=1,
    )

    print_header(
        "E12 / extension",
        "optimal membership-inference advantage vs the ε-DP cap",
    )
    table = ResultTable(
        ["epsilon", "attack advantage", "DP cap (e^ε-1)/(e^ε+1)", "RR control"],
        title="worst neighbour pair, Gibbs estimator, n=2, |Θ|=5",
    )
    advantages = []
    for eps, (advantage, p, q) in rows:
        rr = RandomizedResponse(eps)
        t = rr.truth_probability
        rr_adv = membership_advantage(
            DiscreteDistribution([0, 1], [t, 1 - t]),
            DiscreteDistribution([0, 1], [1 - t, t]),
        )
        cap = dp_advantage_bound(eps)
        table.add_row(eps, advantage, cap, rr_adv)
        advantages.append(advantage)
        # The Gibbs attack stays strictly under the cap; RR attains it.
        assert advantage < cap
        assert rr_adv == pytest.approx(cap, abs=1e-12)
        # And the full ROC respects the DP tradeoff bound.
        assert verify_tradeoff_dominance(p, q, eps)
    print(table)

    # More ε, more attack surface.
    assert all(a <= b + 1e-12 for a, b in zip(advantages, advantages[1:]))


def test_e12_roc_curve_printout(benchmark):
    epsilon = 1.0

    def run():
        _, p, q = worst_pair_laws(epsilon)
        roc = optimal_attack_roc(p, q)
        alphas = np.linspace(0, 1, 21)
        actual = np.asarray([roc.beta_at(a) for a in alphas])
        bound = dp_tradeoff_curve(epsilon, alphas)
        return alphas, actual, bound

    alphas, actual, bound = benchmark.pedantic(run, rounds=1, iterations=1)

    print_header(
        "E12b", f"attack ROC vs DP tradeoff bound at ε={epsilon} (β vs α)"
    )
    print(
        ascii_curve(
            alphas,
            actual,
            title="optimal attacker's β(α) — must lie above the DP bound",
            x_label="alpha (FPR)",
            y_label="beta (FNR)",
        )
    )
    table = ResultTable(["alpha", "attack beta", "DP lower bound", "slack"])
    for a, act, b in zip(alphas[::4], actual[::4], bound[::4]):
        table.add_row(a, act, b, act - b)
        assert act >= b - 1e-9
    print(table)


def test_e12_roc_computation_speed(benchmark):
    task = BernoulliTask(p=0.7)
    grid = PredictorGrid.linspace(task.loss, 0.0, 1.0, 21)
    estimator = GibbsEstimator.from_privacy(grid, 1.0, expected_sample_size=N)
    p = estimator.output_distribution([0, 0])
    q = estimator.output_distribution([0, 1])
    roc = benchmark(lambda: optimal_attack_roc(p, q))
    assert roc.advantage >= 0
