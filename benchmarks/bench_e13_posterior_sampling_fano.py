"""E13 (extension): posterior sampling and the Fano privacy floor.

Two closing pieces of the paper's program:

* **posterior sampling** — with the negative log-likelihood as the loss,
  the Gibbs estimator is the tempered Bayes posterior, and one posterior
  sample is 2λB-DP ("privacy for free"). We sweep ε on the truncated
  Beta–Bernoulli model and report estimation error, against the grid
  Gibbs estimator on the same task.
* **Fano lower bound** — the "lower bounds" half of the paper's §5: the
  DP information cap I ≤ n·ε forces a *floor* on how well ANY ε-DP
  learner can identify the secret sample; measured Bayes-adversary error
  of the Gibbs channel is compared against the exact-MI Fano floor and
  the a-priori DP chain floor.

Expected shape (asserted): both MSE curves fall monotonically in ε toward
the sampling floor and track each other closely — the grid route's
risk-calibrated temperature (λ = εn/2) is sharper than posterior
sampling's n-free λ = ε/(2B), while posterior sampling avoids any
discretization; Bayes error ≥ exact Fano ≥ DP chain floor everywhere, and
the floors bind (are > 0) at small ε.
"""

import numpy as np
import pytest

from benchmarks.common import print_header
from repro.core import GibbsEstimator, LearningChannel, TruncatedBetaBernoulliPosterior
from repro.distributions import DiscreteDistribution
from repro.experiments import ResultTable
from repro.information.fano import dp_identification_lower_bound, verify_fano
from repro.learning import BernoulliTask, PredictorGrid

EPSILONS = [0.1, 0.5, 2.0, 10.0, 50.0]
TRUE_P = 0.7
N = 400
SEEDS = 400


def bench_case(epsilon, draws=100, seed=1, fano_n=3):
    """Engine entry point: sampling error + Fano floors at one ε."""
    task = BernoulliTask(p=TRUE_P)
    data = task.sample(N, random_state=0)
    grid = PredictorGrid.linspace(
        lambda theta, z: (theta - z) ** 2, 0.0, 1.0, 21
    )
    rng = np.random.default_rng(seed)
    sampler = TruncatedBetaBernoulliPosterior(epsilon=epsilon, truncation=0.05)
    bayes_draws = np.asarray(
        sampler.release_many(data, draws, random_state=rng), dtype=float
    )
    gibbs = GibbsEstimator.from_privacy(grid, epsilon, N)
    # Batched draws from the (dataset-fixed) Gibbs posterior.
    gibbs_draws = np.asarray(
        gibbs.release_many(list(data), draws, random_state=rng), dtype=float
    )

    fano_task = BernoulliTask(p=0.5)
    fano_grid = PredictorGrid.linspace(fano_task.loss, 0.0, 1.0, 5)
    law = DiscreteDistribution([0, 1], [0.5, 0.5])
    estimator = GibbsEstimator.from_privacy(fano_grid, epsilon, fano_n)
    channel = LearningChannel(law, fano_n, estimator.gibbs.posterior)
    report = verify_fano(channel.channel, channel.sample_law)
    return {
        "bayes_mse": float(((bayes_draws - TRUE_P) ** 2).mean()),
        "gibbs_mse": float(((gibbs_draws - TRUE_P) ** 2).mean()),
        "bayes_error": float(report["bayes_error"]),
        "fano_exact": float(report["fano_bound"]),
        "fano_chain": float(
            dp_identification_lower_bound(epsilon, fano_n, 2**fano_n)
        ),
        "fano_holds": bool(report["holds"]),
    }


BENCH_SPEC = {
    "case": bench_case,
    "grid": {"epsilon": EPSILONS},
    "fixed": {"draws": 100, "seed": 1, "fano_n": 3},
    "seed_param": "seed",
}


def test_e13_posterior_sampling_error(benchmark):
    task = BernoulliTask(p=TRUE_P)
    data = task.sample(N, random_state=0)
    # Squared loss so the grid Gibbs estimates the bias p itself (the
    # absolute loss would target the majority label instead).
    grid = PredictorGrid.linspace(
        lambda theta, z: (theta - z) ** 2, 0.0, 1.0, 21
    )

    def run():
        rows = []
        rng = np.random.default_rng(1)
        for eps in EPSILONS:
            sampler = TruncatedBetaBernoulliPosterior(
                epsilon=eps, truncation=0.05
            )
            bayes_draws = np.asarray(
                sampler.release_many(data, SEEDS, random_state=rng),
                dtype=float,
            )
            gibbs = GibbsEstimator.from_privacy(grid, eps, N)
            gibbs_draws = np.asarray(
                gibbs.release_many(list(data), SEEDS, random_state=rng),
                dtype=float,
            )
            rows.append(
                {
                    "epsilon": eps,
                    "bayes_mse": float(((bayes_draws - TRUE_P) ** 2).mean()),
                    "gibbs_mse": float(((gibbs_draws - TRUE_P) ** 2).mean()),
                }
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)

    print_header(
        "E13a / extension",
        f"posterior sampling vs grid Gibbs: MSE of θ̂ around p={TRUE_P} (n={N})",
    )
    table = ResultTable(
        ["epsilon", "posterior-sampling MSE", "grid-Gibbs MSE"],
        title=f"{SEEDS} released samples each; truncation 0.05; 21-point grid",
    )
    for row in rows:
        table.add_row(row["epsilon"], row["bayes_mse"], row["gibbs_mse"])
    print(table)

    for key in ("bayes_mse", "gibbs_mse"):
        values = [r[key] for r in rows]
        assert values[-1] <= values[0] + 1e-9
    # At high ε both are small; the Bernoulli sampling floor is ~p(1-p)/n.
    floor = TRUE_P * (1 - TRUE_P) / N
    assert rows[-1]["bayes_mse"] < 20 * floor


def test_e13_fano_floor(benchmark):
    task = BernoulliTask(p=0.5)  # uniform secret: Fano at full strength
    grid = PredictorGrid.linspace(task.loss, 0.0, 1.0, 5)
    law = DiscreteDistribution([0, 1], [0.5, 0.5])
    n = 3

    def run():
        rows = []
        for eps in EPSILONS:
            estimator = GibbsEstimator.from_privacy(grid, eps, n)
            channel = LearningChannel(law, n, estimator.gibbs.posterior)
            report = verify_fano(channel.channel, channel.sample_law)
            rows.append(
                {
                    "epsilon": eps,
                    "bayes_error": report["bayes_error"],
                    "fano_exact": report["fano_bound"],
                    "fano_chain": dp_identification_lower_bound(eps, n, 2**n),
                    "holds": report["holds"],
                }
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)

    print_header(
        "E13b / extension",
        "secret-identification error vs Fano floors (8 secrets, n=3)",
    )
    table = ResultTable(
        [
            "epsilon",
            "Bayes adversary error",
            "Fano floor (exact MI)",
            "Fano floor (DP chain)",
        ],
    )
    for row in rows:
        table.add_row(
            row["epsilon"],
            row["bayes_error"],
            row["fano_exact"],
            row["fano_chain"],
        )
        assert row["holds"]
        assert row["bayes_error"] >= row["fano_chain"] - 1e-12
        assert row["fano_chain"] <= row["fano_exact"] + 1e-12
    print(table)

    # The floor binds at small ε: privacy provably protects the secret.
    assert rows[0]["fano_chain"] > 0.5


def test_e13_sampling_speed(benchmark):
    data = BernoulliTask(p=0.7).sample(400, random_state=2)
    sampler = TruncatedBetaBernoulliPosterior(epsilon=1.0)
    rng = np.random.default_rng(3)
    value = benchmark(lambda: sampler.release(data, random_state=rng))
    assert 0.05 <= value <= 0.95
