"""E18 (ROADMAP: DJW local model): minimax-rate gap of local privacy.

Mean estimation in R^8 under three trust models — non-private, central
ε-DP (one Gamma-norm release by a trusted curator), and local ε-DP (each
record privatized by the DJW ℓ2/ℓ∞ sampling mechanisms before
transmission). The measured MSEs exhibit the DJW rate gap: the local
error tracks the closed-form prediction ``B²/n ≍ d/(nε²)`` while the
central error stays within a constant of the non-private ``1/n``, so the
degradation factor grows like ``d/ε²`` as ε shrinks.

Alongside the rates, the information-theoretic cause is verified
numerically on every swept configuration: the k-RR local channel at the
same ε contracts KL and TV between any two input laws, with the
symmetrized output KL below DJW Theorem 1's ``4(e^ε-1)²·TV²`` bound.

Expected shape (asserted): local MSE within a band of the closed-form
prediction at every ε and monotone decreasing in ε; local/central
degradation ≥ 5× everywhere on the grid; every DPI verdict true.
"""

import numpy as np

from benchmarks.common import print_header
from repro.experiments import ResultTable
from repro.local_privacy import (
    L2SamplingMechanism,
    LInfSamplingMechanism,
    central_private_mean,
    dpi_report,
    local_minimax_rate,
    locally_private_mean,
    nonprivate_rate,
)
from repro.privacy import KRandomizedResponse
from repro.utils.validation import check_random_state

EPSILONS = [0.25, 0.5, 1.0, 2.0, 4.0]
DIMENSION = 8
N_RECORDS = 2_000
REPEATS = 6
#: Input laws for the channel-contraction check (well-separated pair).
DPI_P = np.array([0.70, 0.10, 0.10, 0.10])
DPI_Q = np.array([0.10, 0.10, 0.10, 0.70])
DPI_CATEGORIES = ("a", "b", "c", "d")

#: True mean of the synthetic record law (first coordinate only).
MEAN_SHIFT = 0.3
NOISE_RADIUS = 0.5


def sample_records(n, rng):
    """Records with known mean: μ + uniform-ball noise, ‖x‖₂ ≤ 0.8 < 1."""
    mean = np.zeros(DIMENSION)
    mean[0] = MEAN_SHIFT
    directions = check_random_state(rng).normal(size=(n, DIMENSION))
    directions /= np.sqrt((directions * directions).sum(axis=1))[:, None]
    radii = check_random_state(rng).uniform(size=(n, 1)) ** (1.0 / DIMENSION)
    return mean, mean + NOISE_RADIUS * radii * directions


def mse_sweep(n=N_RECORDS, repeats=REPEATS, seed=0):
    """Measured MSE of the four estimators at every ε on fresh datasets."""
    rows = []
    for eps in EPSILONS:
        l2 = L2SamplingMechanism(DIMENSION, eps)
        linf = LInfSamplingMechanism(DIMENSION, eps)
        errors = {"nonprivate": [], "central": [], "local_l2": [], "local_linf": []}
        for repeat in range(repeats):
            rng = np.random.default_rng(seed * 10_000 + repeat)
            mean, records = sample_records(n, rng)
            estimates = {
                "nonprivate": records.mean(axis=0),
                "central": central_private_mean(records, eps, random_state=rng),
                "local_l2": locally_private_mean(records, l2, random_state=rng),
                "local_linf": locally_private_mean(records, linf, random_state=rng),
            }
            for key, estimate in estimates.items():
                errors[key].append(float(((estimate - mean) ** 2).sum()))
        row = {"epsilon": eps}
        for key, values in errors.items():
            row[f"mse_{key}"] = float(np.mean(values))
        row["predicted_local_l2"] = l2.predicted_mean_squared_error(n)
        row["rate_local"] = local_minimax_rate(DIMENSION, n, eps)
        row["rate_nonprivate"] = nonprivate_rate(DIMENSION, n)
        rows.append(row)
    return rows


def dpi_sweep():
    """DJW Theorem-1 verdicts for the k-RR channel at every swept ε."""
    rows = []
    for eps in EPSILONS:
        mechanism = KRandomizedResponse(DPI_CATEGORIES, eps)
        report = dpi_report(mechanism.channel_matrix(), DPI_P, DPI_Q, eps)
        report["epsilon"] = eps
        rows.append(report)
    return rows


def bench_case(epsilon, n=N_RECORDS, repeats=4, seed=0):
    """Engine entry point: rate gap + DPI verdicts at one ε."""
    l2 = L2SamplingMechanism(DIMENSION, epsilon)
    linf = LInfSamplingMechanism(DIMENSION, epsilon)
    errors = {"nonprivate": [], "central": [], "local_l2": [], "local_linf": []}
    for repeat in range(repeats):
        rng = np.random.default_rng(seed * 10_000 + repeat)
        mean, records = sample_records(n, rng)
        errors["nonprivate"].append(
            float(((records.mean(axis=0) - mean) ** 2).sum())
        )
        errors["central"].append(
            float(
                ((central_private_mean(records, epsilon, random_state=rng) - mean) ** 2).sum()
            )
        )
        errors["local_l2"].append(
            float(((locally_private_mean(records, l2, random_state=rng) - mean) ** 2).sum())
        )
        errors["local_linf"].append(
            float(
                ((locally_private_mean(records, linf, random_state=rng) - mean) ** 2).sum()
            )
        )
    mse = {key: float(np.mean(values)) for key, values in errors.items()}
    dpi = dpi_report(
        KRandomizedResponse(DPI_CATEGORIES, epsilon).channel_matrix(),
        DPI_P,
        DPI_Q,
        epsilon,
    )
    return {
        "mse_nonprivate": mse["nonprivate"],
        "mse_central": mse["central"],
        "mse_local_l2": mse["local_l2"],
        "mse_local_linf": mse["local_linf"],
        "predicted_local_l2": l2.predicted_mean_squared_error(n),
        "degradation_vs_central": mse["local_l2"] / mse["central"],
        "predicted_degradation": l2.predicted_mean_squared_error(n)
        / nonprivate_rate(DIMENSION, n),
        "dpi_kl_contracts": float(dpi["kl_contracts"]),
        "dpi_tv_contracts": float(dpi["tv_contracts"]),
        "dpi_bound_holds": float(dpi["bound_holds"]),
    }


BENCH_SPEC = {
    "case": bench_case,
    "grid": {"epsilon": EPSILONS},
    "fixed": {"n": N_RECORDS, "repeats": 4, "seed": 0},
    "seed_param": "seed",
}


def test_e18_minimax_rate_gap(benchmark):
    rows = benchmark.pedantic(mse_sweep, rounds=1, iterations=1)

    print_header(
        "E18 / local-privacy minimax rates",
        f"mean estimation in R^{DIMENSION}, n={N_RECORDS}, {REPEATS} repeats",
    )
    table = ResultTable(
        [
            "epsilon",
            "non-private",
            "central DP",
            "local ℓ2",
            "local ℓ∞",
            "predicted ℓ2 (B²/n)",
        ],
        title="mean-estimation MSE by trust model",
    )
    for row in rows:
        table.add_row(
            row["epsilon"],
            row["mse_nonprivate"],
            row["mse_central"],
            row["mse_local_l2"],
            row["mse_local_linf"],
            row["predicted_local_l2"],
        )
    print(table)

    for row in rows:
        # The local model pays its d/ε² factor at every ε on the grid.
        assert row["mse_local_l2"] >= 5.0 * row["mse_central"], row
        # Measured local error tracks the closed-form B²/n prediction —
        # this is "degrades by the predicted factor", not just "worse".
        ratio = row["mse_local_l2"] / row["predicted_local_l2"]
        assert 0.5 <= ratio <= 1.5, row
    # Errors decrease as ε grows (the trend the DJW rate predicts).
    local = [row["mse_local_l2"] for row in rows]
    assert all(a > b for a, b in zip(local, local[1:])), local


def test_e18_dpi_holds_on_every_configuration(benchmark):
    rows = benchmark.pedantic(dpi_sweep, rounds=1, iterations=1)

    table = ResultTable(
        ["epsilon", "KL in", "KL out", "TV in", "TV out", "sym KL out", "DJW bound"],
        title="divergence contraction through the k-RR channel",
    )
    for row in rows:
        table.add_row(
            row["epsilon"],
            row["input_kl"],
            row["output_kl"],
            row["input_tv"],
            row["output_tv"],
            row["symmetrized_output_kl"],
            row["djw_bound"],
        )
    print(table)

    for row in rows:
        assert row["kl_contracts"], row
        assert row["tv_contracts"], row
        assert row["bound_holds"], row
        # Strict contraction away from the trivial channel.
        assert row["output_kl"] < row["input_kl"]


def test_e18_clipped_frequency_estimates_are_distributions(benchmark):
    """The clip_and_renormalize post-processing keeps finite-n frequency
    estimates on the simplex without hurting consistency."""

    def run():
        rng = np.random.default_rng(5)
        results = []
        for eps in EPSILONS:
            mechanism = KRandomizedResponse(DPI_CATEGORIES, eps)
            records = rng.choice(DPI_CATEGORIES, p=DPI_P, size=4_000)
            reports = mechanism.privatize_many(records, random_state=rng)
            clipped = mechanism.estimate_frequencies(reports, clip=True)
            results.append((eps, clipped))
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    for eps, clipped in results:
        assert np.all(clipped >= 0.0)
        assert abs(float(clipped.sum()) - 1.0) < 1e-9
        assert float(np.abs(clipped - DPI_P).sum()) / 2.0 < 0.25, (eps, clipped)


def test_e18_privatize_many_throughput(benchmark):
    """The vectorized ℓ2 kernel privatizes 50k records in one RNG block."""
    mechanism = L2SamplingMechanism(DIMENSION, 1.0)
    rng = np.random.default_rng(11)
    _, records = sample_records(50_000, rng)

    reports = benchmark(
        lambda: mechanism.privatize_many(records, random_state=rng)
    )
    assert np.asarray(reports).shape == (50_000, DIMENSION)
