"""E16 (Section 3): data-independent bounds vs PAC-Bayes, measured.

The paper's §3 narrative: VC-style bounds restrict the class a priori,
"do not look at the training set", and "as a result such bounds are often
loose"; data-dependent PAC-Bayes bounds adapt. This bench puts numbers on
that sentence: on the Gaussian-threshold task, the Occam (finite-class)
and VC (d=1) certificates of the ERM against the Catoni and Seeger
certificates of the Gibbs posterior, across n, all at one δ.

Expected shape (asserted): every certificate covers its target's true
risk; Seeger < VC at every n (the paper's looseness claim about the
*structural* VC bound); the advantage persists as n grows. A nuance the
measurement surfaces: the Occam bound — a union bound over the finite
grid, i.e. PAC-Bayes with a point-mass posterior — is tighter still for
the ERM, because at temperature √n the Gibbs posterior is not fully
concentrated; the paper's claim is about VC-style structural bounds, and
those are indeed the loose ones.
"""

import numpy as np
import pytest

from benchmarks.common import print_header
from repro.core.uniform_bounds import compare_uniform_vs_pac_bayes
from repro.experiments import ResultTable
from repro.learning import GaussianThresholdTask, PredictorGrid

DELTA = 0.05
SAMPLE_SIZES = [50, 200, 800, 3200]


def build_instance(n: int, seed: int):
    task = GaussianThresholdTask(mu=1.0, sigma=1.0)
    x, y = task.sample(n, random_state=seed)
    grid = PredictorGrid(
        np.linspace(-2.0, 2.0, 41),
        lambda t, z: float(task.zero_one_loss(t, [z[0]], [z[1]])[0]),
        loss_bounds=(0.0, 1.0),
    )
    return task, grid, list(zip(x, y))


def bench_case(n, seed=None):
    """Engine entry point: one certificate-comparison row at sample size n."""
    task, grid, sample = build_instance(n, seed=n if seed is None else seed)
    out = compare_uniform_vs_pac_bayes(grid, sample, vc_dimension=1, delta=DELTA)
    risks = grid.empirical_risks(sample)
    erm_theta = grid.thetas[int(np.argmin(risks))]
    return {
        "erm_true_risk": float(task.true_risk(erm_theta)),
        "occam": float(out["occam"]),
        "vc": float(out["vc"]),
        "catoni": float(out["catoni"]),
        "seeger": float(out["seeger"]),
    }


BENCH_SPEC = {
    "case": bench_case,
    "grid": {"n": SAMPLE_SIZES},
}


def test_e16_certificate_comparison(benchmark):
    def run():
        rows = []
        for n in SAMPLE_SIZES:
            task, grid, sample = build_instance(n, seed=n)
            out = compare_uniform_vs_pac_bayes(
                grid, sample, vc_dimension=1, delta=DELTA
            )
            risks = grid.empirical_risks(sample)
            erm_theta = grid.thetas[int(np.argmin(risks))]
            out["n"] = n
            out["erm_true_risk"] = task.true_risk(erm_theta)
            out["bayes_risk"] = task.bayes_risk()
            rows.append(out)
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)

    print_header(
        "E16 / Section 3",
        f"uniform (Occam/VC) vs PAC-Bayes certificates, δ={DELTA}, "
        "threshold task (Bayes risk ≈ 0.159)",
    )
    table = ResultTable(
        ["n", "ERM true risk", "Occam", "VC", "Catoni", "Seeger"],
        title="each column certifies its predictor's true risk",
    )
    for row in rows:
        table.add_row(
            row["n"],
            row["erm_true_risk"],
            row["occam"],
            row["vc"],
            row["catoni"],
            row["seeger"],
        )
        # Validity of every certificate on this draw.
        assert row["occam"] >= row["erm_true_risk"]
        assert row["vc"] >= row["erm_true_risk"]
        # The paper's looseness claim: PAC-Bayes (Seeger) beats VC.
        assert row["seeger"] < row["vc"]
    print(table)

    # The advantage persists at every n; and all certificates converge
    # toward the Bayes risk as n grows.
    gaps = [row["vc"] - row["seeger"] for row in rows]
    assert all(gap > 0.02 for gap in gaps)
    assert rows[-1]["seeger"] - rows[-1]["bayes_risk"] < 0.1


def test_e16_comparison_speed(benchmark):
    task, grid, sample = build_instance(200, seed=3)
    out = benchmark(
        lambda: compare_uniform_vs_pac_bayes(grid, sample, vc_dimension=1)
    )
    assert out["seeger"] > 0
