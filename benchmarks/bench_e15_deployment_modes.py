"""E15 (extension): deployment modes — local DP and continual release.

Two deployment questions around the paper's trusted-curator model:

* **remove the curator** (local DP): per-record randomization (k-RR,
  unary encoding) vs the central Laplace histogram at the same ε —
  frequency-estimation error quantifies the price of removing trust;
* **release continuously**: the binary-tree mechanism vs naive per-prefix
  noising for a running count under one ε — the polylog-vs-linear error
  scaling in the horizon T.

Expected shape (asserted): central error ≪ local error at every ε (trust
buys a √n-vs-constant gap); unary encoding beats k-RR for large alphabets
at small ε; tree RMS error grows polylogarithmically while naive grows
linearly in T, with the gap widening monotonically.
"""

import numpy as np
import pytest

from benchmarks.common import print_header
from repro.experiments import ResultTable
from repro.mechanisms import NaivePrefixRelease, TreeAggregator
from repro.mechanisms.histogram import PrivateHistogram
from repro.privacy import KRandomizedResponse, UnaryEncoding

CATEGORIES = [f"c{i}" for i in range(16)]
WEIGHTS = np.linspace(2.0, 0.5, 16)
WEIGHTS /= WEIGHTS.sum()
N_USERS = 20_000
EPSILONS = [0.5, 1.0, 2.0, 4.0]


def frequency_errors(epsilon: float, seed: int, n_users: int = N_USERS) -> dict:
    rng = np.random.default_rng(seed)
    records = rng.choice(CATEGORIES, size=n_users, p=WEIGHTS).tolist()
    truth = np.array(
        [records.count(c) / n_users for c in CATEGORIES]
    )

    central = PrivateHistogram(CATEGORIES, epsilon=epsilon)
    central_estimate = central.release(records, random_state=rng) / n_users

    krr = KRandomizedResponse(CATEGORIES, epsilon=epsilon)
    krr_estimate = krr.estimate_frequencies(
        krr.release(records, random_state=rng)
    )

    unary = UnaryEncoding(CATEGORIES, epsilon=epsilon)
    unary_estimate = unary.estimate_frequencies(
        unary.release(records, random_state=rng)
    )

    def l1(estimate):
        return float(np.abs(estimate - truth).sum())

    return {
        "epsilon": epsilon,
        "central": l1(central_estimate),
        "krr": l1(krr_estimate),
        "unary": l1(unary_estimate),
    }


def bench_case(epsilon, n_users=4000, seed=17, horizon=256, repeats=5):
    """Engine entry point: local-vs-central errors + continual counting."""
    frequencies = frequency_errors(epsilon, seed=seed, n_users=n_users)

    rng = np.random.default_rng(seed + 6)
    stream = (rng.uniform(size=horizon) < 0.3).astype(float)
    truth = np.cumsum(stream)
    tree = TreeAggregator(horizon=horizon, epsilon=epsilon)
    naive = NaivePrefixRelease(horizon=horizon, epsilon=epsilon)
    # Batched repeats via release_many (base fallback for these stream
    # mechanisms — same draws, one aggregated ledger event when traced).
    tree_runs = np.asarray(tree.release_many(stream, repeats, random_state=rng))
    tree_rms = np.sqrt(np.mean((tree_runs - truth) ** 2))
    naive_runs = np.asarray(
        naive.release_many(stream, repeats, random_state=rng)
    )
    naive_rms = np.sqrt(np.mean((naive_runs - truth) ** 2))
    return {
        "central_l1": float(frequencies["central"]),
        "krr_l1": float(frequencies["krr"]),
        "unary_l1": float(frequencies["unary"]),
        "tree_rms": float(tree_rms),
        "naive_rms": float(naive_rms),
    }


BENCH_SPEC = {
    "case": bench_case,
    "grid": {"epsilon": EPSILONS},
    "fixed": {"n_users": 4000, "seed": 17, "horizon": 256, "repeats": 5},
    "seed_param": "seed",
}


def test_e15_local_vs_central(benchmark):
    rows = benchmark.pedantic(
        lambda: [frequency_errors(eps, seed=17) for eps in EPSILONS],
        rounds=1,
        iterations=1,
    )

    print_header(
        "E15a / extension",
        f"frequency estimation, local vs central DP "
        f"({len(CATEGORIES)} categories, n={N_USERS})",
    )
    table = ResultTable(
        ["epsilon", "central L1 error", "k-RR L1 error", "unary L1 error"],
    )
    for row in rows:
        table.add_row(row["epsilon"], row["central"], row["krr"], row["unary"])
        # The price of removing trust: local error dominates central.
        assert row["central"] < row["krr"]
        assert row["central"] < row["unary"]
    print(table)

    # Unary encoding beats k-RR for this 16-way alphabet at small ε.
    assert rows[0]["unary"] < rows[0]["krr"]
    # Everyone improves with ε.
    for key in ("central", "krr", "unary"):
        values = [r[key] for r in rows]
        assert values[-1] < values[0]


def test_e15_continual_counting(benchmark):
    epsilon = 1.0

    def run():
        rows = []
        rng = np.random.default_rng(23)
        for horizon in [64, 256, 1024, 4096]:
            stream = (rng.uniform(size=horizon) < 0.3).astype(float)
            truth = np.cumsum(stream)
            tree = TreeAggregator(horizon=horizon, epsilon=epsilon)
            naive = NaivePrefixRelease(horizon=horizon, epsilon=epsilon)
            # Batched draws: each release_many row is one full prefix
            # trajectory, so the grand mean over the (20, horizon) array
            # equals the mean of per-draw MSEs.
            tree_draws = np.asarray(
                tree.release_many(stream, 20, random_state=rng), dtype=float
            )
            tree_rms = np.sqrt(np.mean((tree_draws - truth) ** 2))
            naive_draws = np.asarray(
                naive.release_many(stream, 20, random_state=rng), dtype=float
            )
            naive_rms = np.sqrt(np.mean((naive_draws - truth) ** 2))
            rows.append(
                {
                    "horizon": horizon,
                    "tree_rms": float(tree_rms),
                    "naive_rms": float(naive_rms),
                    "tree_theory": tree.per_step_noise_std(),
                    "naive_theory": naive.per_step_noise_std(),
                }
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)

    print_header(
        "E15b / extension",
        f"continual counting at ε={epsilon}: tree vs naive prefix noising",
    )
    table = ResultTable(
        ["T", "tree RMS", "naive RMS", "tree theory", "naive theory", "gap"],
    )
    gaps = []
    for row in rows:
        gap = row["naive_rms"] / row["tree_rms"]
        gaps.append(gap)
        table.add_row(
            row["horizon"],
            row["tree_rms"],
            row["naive_rms"],
            row["tree_theory"],
            row["naive_theory"],
            gap,
        )
        assert row["tree_rms"] < row["naive_rms"]
        assert row["tree_rms"] <= row["tree_theory"] * 1.3
    print(table)

    # Polylog vs linear: the advantage widens monotonically with T.
    assert all(a < b for a, b in zip(gaps, gaps[1:]))


def test_e15_tree_release_speed(benchmark):
    stream = np.ones(1024)
    tree = TreeAggregator(horizon=1024, epsilon=1.0)
    rng = np.random.default_rng(31)
    out = benchmark(lambda: tree.release(stream, random_state=rng))
    assert out.shape == (1024,)
