"""E3 (Lemma 3.2): the Gibbs posterior minimizes the PAC-Bayes objective.

Compares the closed-form Gibbs posterior against (a) a Nelder-Mead simplex
optimizer started from uniform, (b) large batches of random posteriors, and
(c) the analytic free-energy value. Reports the optimality gap of the best
competitor and the TV distance between the numerical optimum and Gibbs.

Expected shape (asserted): no competitor ever beats Gibbs; the numerical
optimizer lands on the Gibbs posterior; the free-energy identity holds to
machine precision.
"""

import numpy as np
import pytest

from benchmarks.common import print_header
from repro.core.pac_bayes import (
    catoni_objective,
    gibbs_minimizer,
    minimize_catoni_bound,
    optimal_objective_value,
)
from repro.distributions import DiscreteDistribution
from repro.experiments import ResultTable
from repro.learning import BernoulliTask, PredictorGrid

TEMPERATURES = [0.5, 2.0, 8.0, 32.0]


def build_instance(seed=0, n=60, grid_size=6):
    task = BernoulliTask(p=0.75)
    grid = PredictorGrid.linspace(task.loss, 0.0, 1.0, grid_size)
    sample = list(task.sample(n, random_state=seed))
    prior = DiscreteDistribution.uniform(grid.thetas)
    return prior, grid.empirical_risks(sample)


def bench_case(lam, seed=0, n=60, grid_size=6, random_draws=200):
    """Engine entry point: Gibbs optimality at one temperature."""
    prior, risks = build_instance(seed=seed, n=n, grid_size=grid_size)
    rng = np.random.default_rng(seed + 1)
    gibbs = gibbs_minimizer(prior, risks, lam)
    gibbs_value = catoni_objective(gibbs, prior, risks, lam)
    closed_form = optimal_objective_value(prior, risks, lam)
    best_random = min(
        catoni_objective(
            DiscreteDistribution(
                prior.support, rng.dirichlet(np.ones(len(prior)))
            ),
            prior,
            risks,
            lam,
        )
        for _ in range(random_draws)
    )
    numerical, numerical_value = minimize_catoni_bound(
        prior, risks, lam, numerical=True
    )
    return {
        "objective_gibbs": float(gibbs_value),
        "free_energy": float(closed_form),
        "best_random": float(best_random),
        "numerical": float(numerical_value),
        "tv_to_gibbs": float(numerical.total_variation_distance(gibbs)),
    }


BENCH_SPEC = {
    "case": bench_case,
    "grid": {"lam": TEMPERATURES},
    "fixed": {"seed": 0, "n": 60, "grid_size": 6, "random_draws": 200},
    "seed_param": "seed",
}


def test_e3_gibbs_vs_competitors(benchmark):
    prior, risks = build_instance()
    rng = np.random.default_rng(1)

    def run():
        rows = []
        for lam in TEMPERATURES:
            gibbs = gibbs_minimizer(prior, risks, lam)
            gibbs_value = catoni_objective(gibbs, prior, risks, lam)
            closed_form = optimal_objective_value(prior, risks, lam)
            best_random = min(
                catoni_objective(
                    DiscreteDistribution(
                        prior.support, rng.dirichlet(np.ones(len(prior)))
                    ),
                    prior,
                    risks,
                    lam,
                )
                for _ in range(500)
            )
            numerical, numerical_value = minimize_catoni_bound(
                prior, risks, lam, numerical=True
            )
            rows.append(
                {
                    "lam": lam,
                    "gibbs": gibbs_value,
                    "free_energy": closed_form,
                    "best_random": best_random,
                    "numerical": numerical_value,
                    "tv_to_gibbs": numerical.total_variation_distance(gibbs),
                }
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)

    print_header(
        "E3 / Lemma 3.2",
        "Gibbs posterior minimizes λ·E R̂ + KL(π̂‖π); optimizer must agree",
    )
    table = ResultTable(
        [
            "lambda",
            "objective @ Gibbs",
            "free energy (closed form)",
            "best of 500 random",
            "numerical optimum",
            "TV(numerical, Gibbs)",
        ],
        title="Bernoulli(0.75), n=60, |Θ|=6",
    )
    for row in rows:
        table.add_row(
            row["lam"],
            row["gibbs"],
            row["free_energy"],
            row["best_random"],
            row["numerical"],
            row["tv_to_gibbs"],
        )
    print(table)

    for row in rows:
        assert row["gibbs"] <= row["best_random"] + 1e-10
        assert row["gibbs"] == pytest.approx(row["free_energy"], abs=1e-9)
        assert row["numerical"] >= row["gibbs"] - 1e-6
        assert row["tv_to_gibbs"] < 0.03


def test_e3_closed_form_speed(benchmark):
    """Microbenchmark: closed-form Gibbs vs its numerical recovery cost."""
    prior, risks = build_instance(grid_size=6)
    result = benchmark(lambda: gibbs_minimizer(prior, risks, 8.0))
    assert len(result) == 6


def test_e3_numerical_optimizer_speed(benchmark):
    prior, risks = build_instance(grid_size=6)
    _, value = benchmark.pedantic(
        lambda: minimize_catoni_bound(prior, risks, 8.0, numerical=True),
        rounds=1,
        iterations=1,
    )
    assert np.isfinite(value)
