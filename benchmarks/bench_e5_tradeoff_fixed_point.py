"""E5 (Theorem 4.2): the MI-regularized optimum is the Gibbs channel.

Runs the alternating (Blahut–Arimoto) minimization of
``E R̂ + (1/ε)·I(Ẑ;θ)`` from scratch and measures: distance of the
converged channel to the Gibbs kernel of its own marginal, the objective
against the closed-form free energy, iteration counts, and the prior
ablation (bound-optimal marginal prior vs uniform prior) — the paper's
``KL(E_Ẑ π̂ ‖ π)`` extra term, made visible.

Expected shape (asserted): Gibbs deviation ~ solver tolerance at every ε;
objective matches the free-energy closed form; the optimal-prior objective
is never worse than any fixed-prior Gibbs channel's.
"""

import numpy as np
import pytest

from benchmarks.common import bernoulli_instance, print_header
from repro.core import minimize_tradeoff
from repro.core.tradeoff import gibbs_channel_matrix, tradeoff_objective
from repro.experiments import ResultTable
from repro.information.blahut_arimoto import rate_distortion_free_energy

EPSILONS = [0.1, 0.5, 1.0, 2.0, 5.0, 20.0]


def bench_case(epsilon, p=0.7, grid_size=5, n=2):
    """Engine entry point: one alternating minimization at ε."""
    instance = bernoulli_instance(p=p, grid_size=grid_size, n=n)
    source, risks = instance["source"], instance["risk_matrix"]
    result = minimize_tradeoff(source, risks, epsilon)
    free_energy = rate_distortion_free_energy(source, risks, epsilon) / epsilon
    return {
        "objective": float(result.objective),
        "free_energy": float(free_energy),
        "mutual_information": float(result.mutual_information),
        "expected_empirical_risk": float(result.expected_empirical_risk),
        "gibbs_deviation": float(result.gibbs_deviation),
        "iterations": int(result.iterations),
        "converged": bool(result.converged),
    }


BENCH_SPEC = {
    "case": bench_case,
    "grid": {"epsilon": EPSILONS},
    "fixed": {"p": 0.7, "grid_size": 5, "n": 2},
}


def test_e5_fixed_point_sweep(benchmark):
    instance = bernoulli_instance(p=0.7, grid_size=5, n=2)
    source, risks = instance["source"], instance["risk_matrix"]

    def run():
        return [
            (eps, minimize_tradeoff(source, risks, eps)) for eps in EPSILONS
        ]

    rows = benchmark.pedantic(run, rounds=1, iterations=1)

    print_header(
        "E5 / Theorem 4.2",
        "argmin of E R̂ + (1/ε)·I is the Gibbs channel with marginal prior",
    )
    table = ResultTable(
        [
            "epsilon",
            "objective",
            "free energy check",
            "I(Z;theta)",
            "E risk",
            "Gibbs deviation (TV)",
            "iterations",
        ],
        title="alternating minimization from uniform init",
    )
    for eps, result in rows:
        free_energy = rate_distortion_free_energy(source, risks, eps) / eps
        table.add_row(
            eps,
            result.objective,
            free_energy,
            result.mutual_information,
            result.expected_empirical_risk,
            result.gibbs_deviation,
            result.iterations,
        )
        assert result.converged
        assert result.gibbs_deviation < 1e-6
        assert result.objective == pytest.approx(free_energy, abs=1e-6)
    print(table)


def test_e5_prior_ablation(benchmark):
    """Ablation (DESIGN.md #3): objective with the bound-optimal marginal
    prior vs a uniform prior vs a skewed prior."""
    instance = bernoulli_instance(p=0.7, grid_size=5, n=2)
    source, risks = instance["source"], instance["risk_matrix"]
    epsilon = 1.0

    def run():
        optimal = minimize_tradeoff(source, risks, epsilon)
        uniform_prior = np.full(risks.shape[1], 1.0 / risks.shape[1])
        skewed_prior = np.array([0.6, 0.1, 0.1, 0.1, 0.1])
        rows = [("optimal marginal prior", optimal.objective)]
        for label, prior in [
            ("uniform prior", uniform_prior),
            ("skewed prior", skewed_prior),
        ]:
            channel = gibbs_channel_matrix(prior, risks, epsilon)
            rows.append(
                (label, tradeoff_objective(channel, source, risks, epsilon))
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)

    print_header(
        "E5b / ablation",
        "prior choice: bound-optimal E_Z π̂ vs fixed priors (ε=1)",
    )
    table = ResultTable(["prior", "objective E R̂ + I/ε"])
    for label, value in rows:
        table.add_row(label, value)
    print(table)

    optimal_value = rows[0][1]
    for _, value in rows[1:]:
        assert optimal_value <= value + 1e-9


def test_e5_convergence_speed(benchmark):
    """Microbenchmark: one full alternating minimization (ε=1)."""
    instance = bernoulli_instance(p=0.7, grid_size=9, n=3)
    result = benchmark(
        lambda: minimize_tradeoff(
            instance["source"], instance["risk_matrix"], 1.0
        )
    )
    assert result.converged


def test_e5_geometric_convergence(benchmark):
    """The alternating objective decreases monotonically and converges
    geometrically: successive decrements shrink by a stable factor."""
    from repro.information.blahut_arimoto import rate_distortion

    instance = bernoulli_instance(p=0.7, grid_size=5, n=2)
    source, risks = instance["source"], instance["risk_matrix"]

    def run():
        values = []
        for iterations in [1, 2, 4, 8, 16, 32]:
            result = rate_distortion(
                source, risks, beta=1.0, max_iterations=iterations, tol=0.0
            )
            values.append(result.value)
        return values

    values = benchmark.pedantic(run, rounds=1, iterations=1)
    print_header("E5c", "objective vs iteration budget (monotone descent)")
    for its, value in zip([1, 2, 4, 8, 16, 32], values):
        print(f"  iterations={its:>3}  objective={value:.12f}")
    assert all(a >= b - 1e-12 for a, b in zip(values, values[1:]))
