"""Packaging via setup.py: the sandboxed environment's pip/setuptools pair
predates PEP 660 editable installs, so metadata lives here instead of in a
``[project]`` table (which would force the PEP 517 path and fail on the
missing ``wheel`` package)."""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Differentially-private learning via PAC-Bayes and information "
        "theory (reproduction of Mir, PAIS/EDBT 2012)"
    ),
    long_description=open("README.md").read() if __import__("os").path.exists("README.md") else "",
    long_description_content_type="text/markdown",
    python_requires=">=3.10",
    license="MIT",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    install_requires=["numpy>=1.24", "scipy>=1.10"],
    extras_require={"test": ["pytest", "pytest-benchmark", "hypothesis"]},
)
