"""Quickstart: differentially-private learning with the Gibbs estimator.

The 60-second tour of the library on the simplest possible task — predict
a biased coin — where every quantity in the paper is available in closed
form:

1. build a predictor grid with a bounded loss;
2. calibrate the Gibbs temperature to a privacy target (Theorem 4.1);
3. release a private predictor and inspect its utility;
4. *prove* (not sample) the ε guarantee with the exact auditor;
5. read off the PAC-Bayes risk certificate (Theorem 3.1).

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import (
    BernoulliTask,
    DiscreteDistribution,
    ExactPrivacyAuditor,
    GibbsEstimator,
    PredictorGrid,
    evaluate_all_bounds,
)

EPSILON = 1.0
N = 100


def main() -> None:
    # A data source we fully control: Z ~ Bernoulli(0.8), loss = |θ - z|.
    task = BernoulliTask(p=0.8)
    sample = list(task.sample(N, random_state=0))

    # Θ = 21 candidate predictors on [0, 1]; loss is bounded in [0, 1], so
    # the empirical risk has global sensitivity 1/n (Definition 2.2).
    grid = PredictorGrid.linspace(task.loss, 0.0, 1.0, 21)

    # Calibrate the Gibbs temperature λ = εn/2 for an ε-DP release.
    learner = GibbsEstimator.from_privacy(
        grid, epsilon=EPSILON, expected_sample_size=N
    )
    print(f"Gibbs estimator: temperature λ = {learner.temperature:.1f}, "
          f"guarantee = {learner.privacy}")

    # Release one private predictor.
    theta = learner.release(sample, random_state=1)
    print(f"\nreleased predictor θ = {theta:.2f}")
    print(f"  true risk R(θ)       = {task.true_risk(theta):.4f}")
    print(f"  Bayes risk           = {task.bayes_risk():.4f}")
    print(f"  ERM (non-private) θ  = {grid.erm(sample):.2f}")

    # Exact privacy audit: enumerate every neighbouring pair of samples on
    # a small universe and compute the worst-case privacy loss. (We audit a
    # size-3 miniature — the guarantee is per-sample-size.)
    mini = GibbsEstimator.from_privacy(grid, EPSILON, expected_sample_size=3)
    auditor = ExactPrivacyAuditor(mini.output_distribution)
    report = auditor.audit([0, 1], n=3, claimed_epsilon=EPSILON)
    print(f"\nexact privacy audit (n=3 universe): {report}")

    # PAC-Bayes certificates for the whole posterior (Theorem 3.1).
    posterior = learner.output_distribution(sample)
    risks = grid.empirical_risks(sample)
    report = evaluate_all_bounds(
        posterior,
        DiscreteDistribution.uniform(grid.thetas),
        risks,
        N,
        delta=0.05,
    )
    true_gibbs_risk = sum(p * task.true_risk(t) for t, p in posterior)
    print("\nPAC-Bayes certificates on the released posterior (δ=0.05):")
    print(f"  empirical Gibbs risk : {report.empirical_risk:.4f}")
    print(f"  true Gibbs risk      : {true_gibbs_risk:.4f}")
    print(f"  Catoni bound         : {report.catoni:.4f}")
    print(f"  McAllester bound     : {report.mcallester:.4f}")
    print(f"  Seeger bound         : {report.seeger:.4f}")
    name, value = report.tightest()
    print(f"  tightest             : {name} = {value:.4f}")
    assert value >= true_gibbs_risk, "certificate must cover the truth"


if __name__ == "__main__":
    main()
