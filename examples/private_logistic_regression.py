"""Scenario: private credit-approval classifier, three ways.

A lender trains an approve/decline classifier on sensitive applicant data
(synthetic two-Gaussian features, ‖x‖ ≤ 1) and must release the model under
ε-DP. The script compares, across ε:

* non-private regularized logistic regression (the ceiling);
* output perturbation  — perturb the exact ERM solution (Chaudhuri et al.);
* objective perturbation — perturb the objective before solving;
* the paper's generic route — the Gibbs/exponential-mechanism learner over
  a grid of 64 directions, needing no convexity or smoothness at all.

Run:  python examples/private_logistic_regression.py
"""

import numpy as np

from repro import LogisticRegressionModel, TwoGaussiansTask
from repro.experiments import ResultTable
from repro.learning import LogisticLoss
from repro.private_learning import (
    ExponentialMechanismLearner,
    ObjectivePerturbationClassifier,
    OutputPerturbationClassifier,
)

N_TRAIN = 800
SEEDS = 8
EPSILONS = [0.1, 0.5, 2.0, 10.0]
REGULARIZATION = 0.01


def main() -> None:
    task = TwoGaussiansTask([1.5, 0.3], clip_features=True)
    x_train, y_train = task.sample(N_TRAIN, random_state=0)
    x_test, y_test = task.sample(5_000, random_state=123)

    ceiling = LogisticRegressionModel(REGULARIZATION).fit(x_train, y_train)
    ceiling_acc = ceiling.accuracy(x_test, y_test)
    print(f"non-private logistic regression accuracy: {ceiling_acc:.3f}")
    print(f"(both private baselines assume ‖x‖ ≤ 1 and a 1-Lipschitz loss)\n")

    table = ResultTable(
        ["epsilon", "output-pert", "objective-pert", "gibbs grid-64"],
        title=f"mean test accuracy over {SEEDS} seeds (ceiling "
        f"{ceiling_acc:.3f})",
    )
    for eps in EPSILONS:
        out_acc, obj_acc, gibbs_acc = [], [], []
        for seed in range(SEEDS):
            out = OutputPerturbationClassifier(
                LogisticLoss(), REGULARIZATION, eps
            ).fit(x_train, y_train, random_state=seed)
            obj = ObjectivePerturbationClassifier(
                LogisticLoss(), REGULARIZATION, eps
            ).fit(x_train, y_train, random_state=seed)
            gibbs = ExponentialMechanismLearner(
                2, eps, N_TRAIN, resolution=64
            ).fit(x_train, y_train, random_state=seed)
            out_acc.append(out.accuracy(x_test, y_test))
            obj_acc.append(obj.accuracy(x_test, y_test))
            gibbs_acc.append(gibbs.accuracy(x_test, y_test))
        table.add_row(
            eps,
            float(np.mean(out_acc)),
            float(np.mean(obj_acc)),
            float(np.mean(gibbs_acc)),
        )
    print(table)

    print(
        "\nreading: objective perturbation dominates output perturbation at\n"
        "moderate ε (its noise enters before the optimization); the generic\n"
        "Gibbs learner is competitive everywhere despite knowing nothing\n"
        "about convexity — it pays only the 64-direction discretization."
    )


if __name__ == "__main__":
    main()
