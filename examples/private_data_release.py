"""Scenario: a private statistics dashboard for a salary dataset.

An employer publishes salary statistics for 1,200 employees under a total
privacy budget, combining three structured-release tools:

* a private **histogram** of salary bands (one ε charge; every linear
  query over the bands is then free post-processing);
* **range queries** ("how many earn 60–100k?") answered from the noisy
  histogram, with analytic error bars;
* a **smooth-sensitivity median** — orders of magnitude more accurate
  than the global-sensitivity Laplace median on concentrated data;
* the **sparse vector technique** scanning many threshold questions while
  paying only for the (single) positive answer.

Run:  python examples/private_data_release.py
"""

import numpy as np

from repro.mechanisms import (
    PrivacyAccountant,
    PrivacySpec,
    SmoothSensitivityMedian,
    SparseVector,
)
from repro.mechanisms.histogram import LinearQueryWorkload, PrivateHistogram
from repro.experiments import ResultTable

N_EMPLOYEES = 1_200
BANDS = ["0-40k", "40-60k", "60-80k", "80-100k", "100-150k", "150k+"]
TOTAL_BUDGET = 1.5


def synthesize_salaries(rng) -> np.ndarray:
    """Log-normal-ish salaries in thousands, clipped to [0, 300]."""
    return np.clip(np.exp(rng.normal(4.2, 0.4, size=N_EMPLOYEES)), 0, 300)


def to_band(salary: float) -> str:
    edges = [40, 60, 80, 100, 150]
    for band, edge in zip(BANDS, edges):
        if salary < edge:
            return band
    return BANDS[-1]


def main() -> None:
    rng = np.random.default_rng(11)
    salaries = synthesize_salaries(rng)
    bands = [to_band(s) for s in salaries]
    # A small δ allowance covers the (ε, δ)-DP smooth-sensitivity median.
    accountant = PrivacyAccountant(budget=PrivacySpec(TOTAL_BUDGET, delta=1e-5))
    print(f"dataset: {N_EMPLOYEES} employees; total budget "
          f"(ε = {TOTAL_BUDGET}, δ = 1e-5)\n")

    # --- Histogram (ε = 0.5) + free range queries. ------------------------
    histogram = PrivateHistogram(BANDS, epsilon=0.5)
    noisy = accountant.run(histogram, bands, label="salary-band histogram",
                           random_state=rng)
    true = histogram.true_counts(bands)
    table = ResultTable(
        ["band", "true count", "released count"],
        title="salary-band histogram (ε = 0.5)",
    )
    for band, t, r in zip(BANDS, true, noisy):
        table.add_row(band, int(t), r)
    print(table)
    print(f"  per-band 95% error bound: ±{histogram.expected_max_error():.1f}\n")

    workload = LinearQueryWorkload.prefix_queries(BANDS)
    answers = workload.answer(histogram.nonnegative_counts())
    print("cumulative counts from the SAME release (free post-processing):")
    for band, value in zip(BANDS, answers):
        print(f"  ≤ {band:<8} {value:8.1f}")
    print()

    # --- Smooth-sensitivity median (ε = 0.5, δ = 1e-6). -------------------
    median_mechanism = SmoothSensitivityMedian(
        0.0, 300.0, epsilon=0.5, delta=1e-6
    )
    accountant.charge(median_mechanism.privacy, label="median salary")
    private_median = median_mechanism.release(salaries, random_state=rng)
    print(f"median salary: released {private_median:.1f}k "
          f"(true {np.median(salaries):.1f}k)")
    print(f"  smooth sensitivity used: "
          f"{median_mechanism.smooth_sensitivity(salaries):.3f}k "
          f"(global-sensitivity noise scale would be "
          f"{median_mechanism.global_sensitivity_noise_scale():.0f}k)\n")

    # --- Sparse vector: scan compliance questions (ε = 0.5). --------------
    sv = SparseVector(threshold=100.0, sensitivity=1.0, epsilon=0.5)
    accountant.charge(sv.privacy, label="threshold scan")
    sv.start(random_state=rng)
    thresholds = [250, 220, 200, 180, 160, 140, 120]
    answer = None
    for level in thresholds:
        count = float((salaries > level).sum())
        if sv.query(count):
            answer = level
            break
    print("sparse-vector scan: first level with >100 earners above it "
          f"(true answer 140): released {answer}")

    # --- The ledger. -------------------------------------------------------
    print(f"\nbudget spent: {accountant.spent} "
          f"(remaining ε = {accountant.remaining_epsilon:.2f})")
    for entry in accountant.ledger():
        print(f"  - {entry.label}: {entry.spec}")


if __name__ == "__main__":
    main()
