"""Scenario: tuning the privacy–accuracy knob, privately.

The Gibbs temperature λ is a hyperparameter: too small and the posterior
ignores the data, too large and it overfits and burns privacy. This
script shows both selection modes on a coin-prediction task:

1. non-private selection — minimize the Catoni bound over a λ grid with a
   union-bounded certificate that stays valid after the choice;
2. fully private selection — pick λ with the exponential mechanism (the
   free energy is its quality score), then release a predictor from the
   Gibbs posterior at that λ, with honest total accounting;
3. the information-theoretic epilogue: the released channel's exact
   generalization gap against its Xu–Raginsky mutual-information bound.

Run:  python examples/private_model_selection.py
"""

import numpy as np

from repro import BernoulliTask, DiscreteDistribution, GibbsEstimator, PredictorGrid
from repro.core import (
    LearningChannel,
    generalization_report,
    private_gibbs_with_selection,
    select_temperature_by_bound,
)
from repro.experiments import ResultTable

N = 200
TEMPERATURES = [0.5, 2.0, 8.0, 14.0, 32.0, 64.0]


def main() -> None:
    task = BernoulliTask(p=0.8)
    sample = list(task.sample(N, random_state=0))
    grid = PredictorGrid.linspace(task.loss, 0.0, 1.0, 9)

    # --- 1. Non-private bound-driven selection. --------------------------
    chosen = select_temperature_by_bound(
        grid, sample, TEMPERATURES, delta=0.05
    )
    print("non-private selection (union-bounded Catoni certificates):")
    table = ResultTable(["lambda", "certificate"], title="δ = 0.05 overall")
    for lam in TEMPERATURES:
        table.add_row(lam, chosen.per_candidate[lam])
    print(table)
    print(f"  selected λ = {chosen.temperature} "
          f"(certificate {chosen.bound_value:.4f})\n")

    # --- 2. Fully private pipeline. ---------------------------------------
    result = private_gibbs_with_selection(
        grid,
        sample,
        TEMPERATURES,
        selection_epsilon=0.5,
        release_epsilon_budget=1.0,
        random_state=1,
    )
    print("private pipeline (selection ε=0.5 + release budget ε=1.0):")
    print(f"  selected λ        = {result.temperature}")
    print(f"  released θ        = {result.theta:.3f} "
          f"(true risk {task.true_risk(result.theta):.4f}, "
          f"Bayes {task.bayes_risk():.4f})")
    print(f"  total guarantee   = {result.privacy}\n")

    # --- 3. What the released channel leaks and how much it overfits. ----
    mini_n = 3
    estimator = GibbsEstimator.from_privacy(grid, 1.0, expected_sample_size=mini_n)
    channel = LearningChannel(
        DiscreteDistribution([0, 1], [0.2, 0.8]), mini_n, estimator.gibbs.posterior
    )
    report = generalization_report(
        channel,
        true_risk=task.true_risk,
        empirical_risk=lambda s, t: task.empirical_risk(t, s),
        epsilon=1.0,
    )
    print("information-theoretic epilogue (exact, n=3 miniature):")
    print(f"  I(Ẑ;θ)                   = {report['mutual_information']:.4f} nats")
    print(f"  exact generalization gap = {report['generalization_gap']:.4f}")
    print(f"  Xu–Raginsky bound        = {report['bound_xu_raginsky']:.4f}")
    print(f"  privacy-chain bound      = {report['bound_privacy_chain']:.4f}")
    assert abs(report["generalization_gap"]) <= report["bound_xu_raginsky"]


if __name__ == "__main__":
    main()
