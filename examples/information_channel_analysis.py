"""Scenario: Figure 1 as an analysis tool — how much does a model leak?

A data owner is about to release a Gibbs-trained predictor and wants the
information-theoretic picture of the paper's Figure 1 for their setting:
how many nats of the secret sample leak through the released θ, what a
Bayesian adversary who sees θ can infer, and how the paper's Theorem 4.2
frontier trades leakage against risk.

Everything is computed *exactly* on a finite data universe.

Run:  python examples/information_channel_analysis.py
"""

import numpy as np

from repro import (
    BernoulliTask,
    DiscreteDistribution,
    GibbsEstimator,
    LearningChannel,
    PredictorGrid,
    tradeoff_curve,
)
from repro.experiments import ResultTable, ascii_curve
from repro.learning import empirical_risk_matrix
import itertools

P = 0.75
N = 3


def main() -> None:
    task = BernoulliTask(p=P)
    grid = PredictorGrid.linspace(task.loss, 0.0, 1.0, 5)
    data_law = DiscreteDistribution([0, 1], [1 - P, P])

    # --- The channel at one operating point (ε = 1). ----------------------
    estimator = GibbsEstimator.from_privacy(grid, 1.0, expected_sample_size=N)
    channel = LearningChannel(data_law, N, estimator.gibbs.posterior)
    summary = channel.leakage_summary()

    print("the learning channel Ẑ → θ at ε = 1 (Figure 1, measured):")
    print(f"  inputs (samples)      : {summary['num_samples']}")
    print(f"  outputs (predictors)  : {summary['num_predictors']}")
    print(f"  H(Ẑ)                  : {summary['sample_entropy']:.4f} nats")
    print(f"  I(Ẑ;θ)                : {summary['mutual_information']:.4f} nats")
    print(f"  leakage fraction      : {100 * summary['leakage_fraction']:.2f}%")
    print(f"  exact privacy loss    : {summary['exact_privacy_loss']:.4f} "
          f"(guarantee 1.0)\n")

    # --- The adversary's view. -------------------------------------------
    print("Bayes adversary: posterior over the secret sample given θ")
    table = ResultTable(["released θ", "P(θ)", "adversary TV shift"])
    marginal = channel.optimal_prior()
    for theta in channel.predictors:
        posterior = channel.adversary_posterior(theta)
        table.add_row(
            f"{theta:.2f}",
            marginal.probability_of(theta),
            posterior.total_variation_distance(channel.sample_law),
        )
    print(table)

    # --- The Theorem 4.2 frontier. ----------------------------------------
    datasets = list(itertools.product([0, 1], repeat=N))
    risks = empirical_risk_matrix(
        lambda t, z: abs(t - z), grid.thetas, [list(d) for d in datasets]
    )
    source = np.array(
        [np.prod([P if z else 1 - P for z in d]) for d in datasets]
    )
    epsilons = np.geomspace(0.01, 10.0, 12)
    points = tradeoff_curve(source, risks, list(epsilons))

    print("\nprivacy–information–risk frontier (Theorem 4.2, exact):")
    table = ResultTable(["epsilon", "I(Ẑ;θ) nats", "E empirical risk"])
    for point in points:
        table.add_row(
            point.epsilon, point.mutual_information, point.expected_empirical_risk
        )
    print(table)
    print()
    print(
        ascii_curve(
            [p.mutual_information for p in points],
            [p.expected_empirical_risk for p in points],
            title="the frontier: risk vs information released",
            x_label="I(Ẑ;θ) nats",
            y_label="risk",
        )
    )


if __name__ == "__main__":
    main()
