"""Scenario: privacy-preserving product telemetry.

A product team wants two things from client telemetry without a trusted
collector for the first and without per-query budget bleed for the
second:

* **which error codes occur how often** — clients randomize locally
  (unary encoding, ε-LDP per report) and the server debiases the noisy
  tallies;
* **a live counter of daily active sessions** — the server holds the
  stream but must publish the running total continuously; the tree
  mechanism pays one ε for the whole timeline instead of one per day.

Run:  python examples/private_telemetry.py
"""

import numpy as np

from repro.experiments import ResultTable, ascii_curve
from repro.mechanisms import TreeAggregator
from repro.privacy import UnaryEncoding

ERROR_CODES = ["E_OK", "E_TIMEOUT", "E_AUTH", "E_DISK", "E_NET", "E_OTHER"]
TRUE_RATES = np.array([0.62, 0.14, 0.09, 0.06, 0.05, 0.04])
N_CLIENTS = 50_000
LOCAL_EPSILON = 2.0

HORIZON = 365
STREAM_EPSILON = 1.0


def main() -> None:
    rng = np.random.default_rng(42)

    # --- Local DP: error-code frequencies without a trusted collector. ---
    reports = rng.choice(ERROR_CODES, size=N_CLIENTS, p=TRUE_RATES).tolist()
    encoder = UnaryEncoding(ERROR_CODES, epsilon=LOCAL_EPSILON)
    noisy_matrix = encoder.release(reports, random_state=rng)
    estimates = encoder.estimate_frequencies(noisy_matrix)
    stderr = np.sqrt(encoder.estimator_variance(N_CLIENTS))

    print(f"error-code telemetry: {N_CLIENTS} clients, per-client "
          f"ε = {LOCAL_EPSILON} (local DP — the server never sees a true "
          f"report)\n")
    table = ResultTable(
        ["code", "true rate", "estimate", "±1.96·se"],
        title="debiased frequencies from unary-encoded reports",
    )
    for code, truth, estimate in zip(ERROR_CODES, TRUE_RATES, estimates):
        table.add_row(code, truth, float(estimate), 1.96 * stderr)
    print(table)

    # --- Continual release: running session count over a year. -----------
    daily_sessions = rng.poisson(0.6, size=HORIZON).clip(0, 1).astype(float)
    tree = TreeAggregator(horizon=HORIZON, epsilon=STREAM_EPSILON)
    released = tree.release(daily_sessions, random_state=rng)
    truth = np.cumsum(daily_sessions)

    print(f"\nrunning count over {HORIZON} days, ONE total budget "
          f"ε = {STREAM_EPSILON} (tree mechanism):")
    print(f"  per-day noise std (theory): {tree.per_step_noise_std():.1f}")
    print(f"  final-day truth/release   : {truth[-1]:.0f} / {released[-1]:.1f}")
    print()
    print(
        ascii_curve(
            np.arange(HORIZON)[::7],
            released[::7],
            title="released running count (weekly samples)",
            x_label="day",
            y_label="count",
        )
    )
    error = np.abs(released - truth)
    print(f"\n  mean |error| over the year: {error.mean():.1f} "
          f"(naive per-day noising at the same ε would need "
          f"Lap({HORIZON}/{STREAM_EPSILON}) per day ⇒ mean |error| "
          f"≈ {HORIZON / STREAM_EPSILON:.0f})")


if __name__ == "__main__":
    main()
