"""Scenario: a privacy-preserving medical survey.

A clinic wants to publish statistics about a sensitive condition from a
survey of 2,000 patients without exposing any individual's answer. The
script walks the mechanism toolbox end to end under one privacy budget:

* randomized response at collection time (local DP per respondent);
* a Laplace-noised prevalence count and a geometric-noised integer count
  (central DP), with exact error quantiles;
* a budget accountant that refuses the query that would overspend.

Run:  python examples/private_medical_survey.py
"""

import numpy as np

from repro import (
    GeometricMechanism,
    LaplaceMechanism,
    PrivacyAccountant,
    PrivacySpec,
    RandomizedResponse,
)

TRUE_PREVALENCE = 0.12
N_PATIENTS = 2_000
TOTAL_BUDGET = 1.0


def main() -> None:
    rng = np.random.default_rng(7)
    answers = (rng.uniform(size=N_PATIENTS) < TRUE_PREVALENCE).astype(int)
    true_count = int(answers.sum())
    print(f"survey: {N_PATIENTS} patients, true positives = {true_count} "
          f"({100 * true_count / N_PATIENTS:.1f}%)\n")

    # --- Local DP: each respondent randomizes their own answer. ----------
    rr = RandomizedResponse(epsilon=1.0)
    noisy_answers = rr.release(answers, random_state=rng)
    estimate = rr.estimate_proportion(noisy_answers)
    stderr = np.sqrt(rr.estimator_variance(N_PATIENTS))
    print("local DP (randomized response, ε=1 per respondent):")
    print(f"  debiased prevalence estimate = {100 * estimate:.2f}% "
          f"(±{100 * 1.96 * stderr:.2f}% at 95%)")
    print(f"  per-respondent truth probability = {rr.truth_probability:.3f}\n")

    # --- Central DP under a budget accountant. ---------------------------
    accountant = PrivacyAccountant(budget=PrivacySpec(TOTAL_BUDGET))
    print(f"central DP: total budget ε = {TOTAL_BUDGET}")

    count_query = lambda data: float(sum(data))
    laplace = LaplaceMechanism(count_query, sensitivity=1.0, epsilon=0.5)
    released_count = accountant.run(
        laplace, answers, label="prevalence count", random_state=rng
    )
    print(f"  Laplace count (ε=0.5): {released_count:.1f} "
          f"(true {true_count}; 95% error ≤ "
          f"{laplace.error_quantile(0.95):.1f})")

    geometric = GeometricMechanism(
        lambda data: int(sum(data[:500])), sensitivity=1.0, epsilon=0.4
    )
    ward_count = accountant.run(
        geometric, answers, label="ward-A count", random_state=rng
    )
    print(f"  geometric ward count (ε=0.4): {ward_count} "
          f"(true {int(answers[:500].sum())})")

    spent = accountant.spent
    print(f"  spent so far: {spent}; remaining ε = "
          f"{accountant.remaining_epsilon:.2f}")

    # The third query would overspend — the accountant refuses.
    another = LaplaceMechanism(count_query, sensitivity=1.0, epsilon=0.5)
    try:
        accountant.run(another, answers, label="one query too many")
    except Exception as error:
        print(f"  third query refused: {error}")

    print("\nledger:")
    for entry in accountant.ledger():
        print(f"  - {entry.label}: {entry.spec}")


if __name__ == "__main__":
    main()
