"""Scenario: shipping a model with a PAC-Bayes risk certificate.

A team trains a threshold classifier on 1-D sensor readings and must ship
it with (a) a provable generalization certificate and (b) a privacy
guarantee. The Gibbs posterior gives both at once — Lemma 3.2 says it is
the bound-minimizing posterior, Theorem 4.1 says it is differentially
private — and this script shows the temperature λ steering the trade:
small λ → strong privacy, loose certificate; large λ → sharp posterior,
weak privacy.

Run:  python examples/pac_bayes_certificates.py
"""

import numpy as np

from repro import (
    DiscreteDistribution,
    GaussianThresholdTask,
    PredictorGrid,
    evaluate_all_bounds,
)
from repro.core import GibbsPosterior
from repro.experiments import ResultTable

N = 400
DELTA = 0.05


def main() -> None:
    task = GaussianThresholdTask(mu=1.0, sigma=1.0)
    x, y = task.sample(N, random_state=0)
    sample = list(zip(x, y))

    grid = PredictorGrid(
        np.linspace(-2.0, 2.0, 41),
        lambda t, z: float(task.zero_one_loss(t, [z[0]], [z[1]])[0]),
        loss_bounds=(0.0, 1.0),
    )
    prior = DiscreteDistribution.uniform(grid.thetas)
    risks = grid.empirical_risks(sample)

    print(f"threshold classification, n={N}, Bayes risk = "
          f"{task.bayes_risk():.4f}\n")

    table = ResultTable(
        [
            "temperature λ",
            "privacy ε = 2λ/n",
            "emp Gibbs risk",
            "true Gibbs risk",
            "Seeger certificate",
            "Catoni certificate",
        ],
        title=f"certificates at δ={DELTA} (all must cover the true risk)",
    )
    for lam in [2.0, 10.0, np.sqrt(N), 60.0, 200.0]:
        gibbs = GibbsPosterior(grid, lam, prior=prior)
        posterior = gibbs.posterior(sample)
        report = evaluate_all_bounds(
            posterior, prior, risks, N, delta=DELTA, temperature=lam
        )
        true_risk = sum(p * task.true_risk(t) for t, p in posterior)
        table.add_row(
            lam,
            gibbs.privacy_epsilon(N),
            report.empirical_risk,
            true_risk,
            report.seeger,
            report.catoni,
        )
        assert report.seeger >= true_risk
    print(table)

    print(
        "\nreading: raising λ sharpens the posterior (lower risk) but"
        "\nweakens privacy linearly (ε = 2λ/n) and eventually inflates the"
        "\nKL term in the certificate — the three-way tension the paper's"
        "\nSection 4 formalizes as mutual-information regularization."
    )


if __name__ == "__main__":
    main()
